package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestComponentChart(t *testing.T) {
	rows := []ComponentRow{
		{N: 1000, ClientEncrypt: 8 * time.Second, ServerCompute: time.Second,
			Communication: 500 * time.Millisecond, ClientDecrypt: time.Millisecond,
			Total: 9501 * time.Millisecond},
		{N: 2000, ClientEncrypt: 16 * time.Second, ServerCompute: 2 * time.Second,
			Communication: time.Second, ClientDecrypt: time.Millisecond,
			Total: 19001 * time.Millisecond},
	}
	var buf bytes.Buffer
	if err := WriteComponentChart(&buf, "Figure 2 (chart)", rows); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Figure 2 (chart)", "1000", "2000", "legend:", "client encrypt"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
	// The larger row's bar must be longer.
	lines := strings.Split(out, "\n")
	var small, large int
	for _, l := range lines {
		if strings.Contains(l, "1000 |") {
			small = strings.Count(l, "#")
		}
		if strings.Contains(l, "2000 |") {
			large = strings.Count(l, "#")
		}
	}
	if large <= small {
		t.Errorf("bar lengths: n=1000 has %d, n=2000 has %d", small, large)
	}
}

func TestComponentChartEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteComponentChart(&buf, "empty", nil); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Error("empty rows should render nothing")
	}
}

func TestComparisonChart(t *testing.T) {
	rows := []ComparisonRow{{N: 5000, Baseline: 10 * time.Second, Variant: time.Second}}
	var buf bytes.Buffer
	if err := WriteComparisonChart(&buf, "Figure 7 (chart)", "plain", "combined", rows); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "a = plain") || !strings.Contains(out, "b = combined") {
		t.Errorf("chart legend missing:\n%s", out)
	}
	// Baseline bar ~10x the variant bar.
	lines := strings.Split(out, "\n")
	var aLen, bLen int
	for _, l := range lines {
		if strings.Contains(l, " a |") {
			aLen = strings.Count(l, "#")
		}
		if strings.Contains(l, " b |") {
			bLen = strings.Count(l, "#")
		}
	}
	if aLen < 5*bLen {
		t.Errorf("bars a=%d b=%d, want ~10x ratio", aLen, bLen)
	}
}

func TestComparisonChartZeroDurations(t *testing.T) {
	var buf bytes.Buffer
	rows := []ComparisonRow{{N: 1, Baseline: 0, Variant: 0}}
	if err := WriteComparisonChart(&buf, "degenerate", "a", "b", rows); err != nil {
		t.Fatal(err)
	}
}
