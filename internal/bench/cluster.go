package bench

import (
	"context"
	"fmt"
	"io"
	"math/big"
	"net"
	"strings"
	"text/tabwriter"
	"time"

	"privstats/internal/cluster"
	"privstats/internal/database"
	"privstats/internal/homomorphic"
	"privstats/internal/server"
)

// ClusterRow is one point of the sharded-deployment sweep: the same query
// served by k shard backends behind the untrusted aggregator.
type ClusterRow struct {
	Shards int
	// Total is the client-observed wall time of the whole query.
	Total time.Duration
	// MaxShardFold is the slowest backend's fold compute — the critical
	// path of the distributed Π E(I_i)^{x_i}. With the fold split k ways it
	// should drop roughly k-fold against the Shards=1 row.
	MaxShardFold time.Duration
	// SumShardFold is the total fold compute across all backends (the
	// work, as opposed to the critical path — it stays roughly flat).
	SumShardFold time.Duration
	// Combine is the aggregator's compute to merge the k partials and
	// rerandomize the reply (k-1 modular multiplications plus one
	// rerandomization — negligible next to the fold).
	Combine time.Duration
}

// FoldSpeedup returns base's MaxShardFold over this row's.
func (r ClusterRow) FoldSpeedup(base ClusterRow) float64 {
	if r.MaxShardFold <= 0 {
		return 0
	}
	return float64(base.MaxShardFold) / float64(r.MaxShardFold)
}

// ClusterSweep runs the selected-sum query at the largest sweep size
// through a real loopback TCP cluster — k sumserver-equivalent backends
// each holding n/k rows, fronted by the aggregator — for each shard count,
// and reports where the time went. Everything is live: real sockets, real
// admission control, real fan-out. shardCounts defaults to {1, 2, 4, 8}.
func (c Config) ClusterSweep(shardCounts []int) ([]ClusterRow, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	if len(shardCounts) == 0 {
		shardCounts = []int{1, 2, 4, 8}
	}
	sk, _, err := c.newKey()
	if err != nil {
		return nil, err
	}
	n := c.Sizes[len(c.Sizes)-1]
	table, sel, err := c.workload(n)
	if err != nil {
		return nil, err
	}
	want, err := table.SelectedSum(sel)
	if err != nil {
		return nil, err
	}

	rows := make([]ClusterRow, 0, len(shardCounts))
	for _, k := range shardCounts {
		row, err := c.clusterPoint(sk, table, sel, want, k)
		if err != nil {
			return nil, fmt.Errorf("bench: cluster k=%d: %w", k, err)
		}
		rows = append(rows, row)
		c.progressf("cluster k=%d total=%v max-fold=%v\n", k,
			row.Total.Round(time.Millisecond), row.MaxShardFold.Round(time.Millisecond))
	}
	return rows, nil
}

// clusterPoint measures one shard count: it stands a live cluster up, runs
// one verified query through it, reads the phase histograms back out of the
// runtimes, and tears everything down.
func (c Config) clusterPoint(sk homomorphic.PrivateKey, table *database.Table, sel *database.Selection, want *big.Int, k int) (ClusterRow, error) {
	noLog := func(string, ...any) {}

	type member struct {
		srv  *server.Server
		ln   net.Listener
		done chan error
	}
	var members []member
	start := func(srv *server.Server) (string, error) {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return "", err
		}
		done := make(chan error, 1)
		go func() { done <- srv.Serve(ln) }()
		members = append(members, member{srv: srv, ln: ln, done: done})
		return ln.Addr().String(), nil
	}
	stopAll := func() {
		for _, m := range members {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			_ = m.srv.Shutdown(ctx)
			cancel()
			<-m.done
		}
	}
	defer stopAll()

	// Backends: k stock server runtimes, each over its contiguous slice.
	groups := make([][]string, k)
	shards := make([]cluster.Shard, k)
	backendSrvs := make([]*server.Server, k)
	lo := 0
	for i := 0; i < k; i++ {
		rows := table.Len() / k
		if i < table.Len()%k {
			rows++
		}
		shardTable, err := table.Shard(lo, lo+rows)
		if err != nil {
			return ClusterRow{}, err
		}
		srv, err := server.New(shardTable, server.Config{Logf: noLog})
		if err != nil {
			return ClusterRow{}, err
		}
		addr, err := start(srv)
		if err != nil {
			return ClusterRow{}, err
		}
		groups[i] = []string{addr}
		shards[i] = cluster.Shard{Lo: lo, Hi: lo + rows, Backends: groups[i]}
		backendSrvs[i] = srv
		lo += rows
	}
	sm, err := cluster.NewShardMap(shards)
	if err != nil {
		return ClusterRow{}, err
	}

	// Aggregator on the same runtime, fronted by the production client.
	fanout := cluster.NewClient(cluster.ClientConfig{})
	agg, err := cluster.NewAggregator(sm, fanout)
	if err != nil {
		return ClusterRow{}, err
	}
	proxy, err := server.NewHandler(agg, server.Config{Logf: noLog})
	if err != nil {
		return ClusterRow{}, err
	}
	proxyAddr, err := start(proxy)
	if err != nil {
		return ClusterRow{}, err
	}

	queryClient := cluster.NewClient(cluster.ClientConfig{})
	t0 := time.Now()
	got, err := queryClient.Query(context.Background(), []string{proxyAddr}, sk, sel, c.ChunkSize, nil)
	if err != nil {
		return ClusterRow{}, err
	}
	total := time.Since(t0)
	if got.Cmp(want) != 0 {
		return ClusterRow{}, fmt.Errorf("wrong sum %v, want %v", got, want)
	}

	row := ClusterRow{Shards: k, Total: total}
	for _, srv := range backendSrvs {
		fold := time.Duration(srv.Metrics().AbsorbNanos.Snapshot().Sum)
		row.SumShardFold += fold
		if fold > row.MaxShardFold {
			row.MaxShardFold = fold
		}
	}
	row.Combine = time.Duration(proxy.Metrics().FinalizeNanos.Snapshot().Sum)
	return row, nil
}

// WriteClusterTable renders the cluster sweep.
func WriteClusterTable(w io.Writer, n int, rows []ClusterRow) error {
	title := fmt.Sprintf("Sharded cluster sweep, n=%d, live loopback TCP", n)
	fmt.Fprintf(w, "%s\n%s\n", title, strings.Repeat("-", len(title)))
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "shards\ttotal\tmax shard fold\tfold speedup\tsum shard fold\taggregator combine")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%s\t%s\t%.2fx\t%s\t%s\n",
			r.Shards, fmtDur(r.Total), fmtDur(r.MaxShardFold), r.FoldSpeedup(rows[0]),
			fmtDur(r.SumShardFold), fmtDur(r.Combine))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w)
	return err
}

// ClusterCSV writes cluster rows as CSV.
func ClusterCSV(w io.Writer, rows []ClusterRow) error {
	if _, err := fmt.Fprintln(w, "shards,total_ms,max_shard_fold_ms,sum_shard_fold_ms,combine_ms"); err != nil {
		return err
	}
	for _, r := range rows {
		ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
		if _, err := fmt.Fprintf(w, "%d,%.3f,%.3f,%.3f,%.3f\n",
			r.Shards, ms(r.Total), ms(r.MaxShardFold), ms(r.SumShardFold), ms(r.Combine)); err != nil {
			return err
		}
	}
	return nil
}
