package server

import (
	"context"
	"errors"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"privstats/internal/selectedsum"
	"privstats/internal/testutil"
	"privstats/internal/wire"
)

// TestIdleClientTimesOutAndReleasesSlot is the ISSUE's idle-timeout
// scenario: a client that goes quiet gets a MsgError, the session is failed
// and its admission slot comes back (no semaphore leak).
func TestIdleClientTimesOutAndReleasesSlot(t *testing.T) {
	testutil.GuardGoroutines(t)
	sk := testKey(t)
	table, sel, want := fixture(t, 20, 10)
	srv, addr := startServer(t, table, Config{
		MaxSessions: 1,
		IdleTimeout: 60 * time.Millisecond,
	})
	m := srv.Metrics()

	idle, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer idle.Close()

	// Say nothing; the server must give up and tell us why.
	wc := wire.NewConn(idle)
	wc.SetIdleTimeout(2 * time.Second) // client-side guard so the test can't hang
	f, err := wc.Recv()
	if err != nil {
		t.Fatalf("reading timeout notice: %v", err)
	}
	if f.Type != wire.MsgError || !strings.Contains(string(f.Payload), "timed out") {
		t.Errorf("frame = %#x %q, want timeout MsgError", byte(f.Type), f.Payload)
	}

	waitFor(t, 2*time.Second, "slot release after timeout", func() bool {
		return m.ActiveSessions.Value() == 0
	})
	if got := m.SessionsFailed.Value(); got != 1 {
		t.Errorf("failed = %d, want 1", got)
	}

	// The slot must be reusable: a well-behaved client now succeeds.
	sum, err := query(t, addr, sk, sel, 0)
	if err != nil {
		t.Fatalf("query after timeout: %v", err)
	}
	if sum.Cmp(want) != 0 {
		t.Errorf("sum = %v, want %v", sum, want)
	}
	reconcile(t, srv)
}

// TestGracefulShutdownDrainsInFlight starts a session, begins shutdown in
// the middle of its index stream, and checks (a) new connections are turned
// away, (b) the in-flight session runs to a correct completion, (c)
// Shutdown returns nil (clean drain).
func TestGracefulShutdownDrainsInFlight(t *testing.T) {
	testutil.GuardGoroutines(t)
	sk := testKey(t)
	table, sel, want := fixture(t, 40, 20)
	srv, addr := startServer(t, table, Config{MaxSessions: 4})
	m := srv.Metrics()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	wc := wire.NewConn(conn)
	wc.SetIdleTimeout(5 * time.Second)

	// Hand-rolled client so the index stream can pause mid-session.
	pk := sk.PublicKey()
	keyBytes, err := pk.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	n := table.Len()
	half := n / 2
	width := pk.CiphertextSize()
	hello := wire.Hello{
		Version:   wire.Version,
		Scheme:    pk.SchemeName(),
		PublicKey: keyBytes,
		VectorLen: uint64(n),
		ChunkLen:  uint32(half),
	}
	if err := wc.Send(wire.MsgHello, hello.Encode()); err != nil {
		t.Fatal(err)
	}
	enc := selectedsum.Online{PK: pk}
	body, err := selectedsum.EncryptRange(enc, sel, 0, half, width)
	if err != nil {
		t.Fatal(err)
	}
	chunk := wire.IndexChunk{Offset: 0, Ciphertexts: body, Width: width}
	if err := wc.Send(wire.MsgIndexChunk, chunk.Encode()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, "session to start", func() bool {
		return m.SessionsStarted.Value() == 1
	})

	// Mid-stream: begin graceful shutdown.
	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutdownErr <- srv.Shutdown(ctx)
	}()
	// The listener closes promptly; new clients are refused.
	waitFor(t, 2*time.Second, "listener to close", func() bool {
		c, err := net.DialTimeout("tcp", addr, 100*time.Millisecond)
		if err != nil {
			return true
		}
		c.Close()
		return false
	})

	// The in-flight session must still finish correctly.
	body, err = selectedsum.EncryptRange(enc, sel, half, n, width)
	if err != nil {
		t.Fatal(err)
	}
	chunk = wire.IndexChunk{Offset: uint64(half), Ciphertexts: body, Width: width}
	if err := wc.Send(wire.MsgIndexChunk, chunk.Encode()); err != nil {
		t.Fatalf("sending tail chunk during drain: %v", err)
	}
	if err := wc.Send(wire.MsgDone, nil); err != nil {
		t.Fatal(err)
	}
	f, err := wc.Recv()
	if err != nil {
		t.Fatalf("reading sum during drain: %v", err)
	}
	if f.Type != wire.MsgSum {
		t.Fatalf("frame = %#x, want MsgSum", byte(f.Type))
	}
	ct, err := pk.ParseCiphertext(f.Payload)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := sk.Decrypt(ct)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Cmp(want) != 0 {
		t.Errorf("sum = %v, want %v", sum, want)
	}

	if err := <-shutdownErr; err != nil {
		t.Errorf("Shutdown = %v, want nil (clean drain)", err)
	}
	if got := m.SessionsCompleted.Value(); got != 1 {
		t.Errorf("completed = %d, want 1", got)
	}
}

// TestShutdownForceClosesAfterGrace: a session that never finishes is
// force-closed once the shutdown context expires.
func TestShutdownForceClosesAfterGrace(t *testing.T) {
	testutil.GuardGoroutines(t)
	table, _, _ := fixture(t, 20, 10)
	srv, err := New(table, Config{MaxSessions: 1, Logf: discardLogf})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	stuck, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer stuck.Close()
	m := srv.Metrics()
	waitFor(t, 2*time.Second, "stuck session to start", func() bool {
		return m.SessionsStarted.Value() == 1
	})

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if err := srv.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("Shutdown = %v, want DeadlineExceeded", err)
	}
	if err := <-serveErr; err != ErrServerClosed {
		t.Errorf("Serve = %v, want ErrServerClosed", err)
	}
	reconcile(t, srv)
	if got := m.SessionsFailed.Value(); got != 1 {
		t.Errorf("failed = %d, want 1 (force-closed session)", got)
	}
}

// flakyListener fails its first n Accepts with a synthetic transient error
// (the EMFILE scenario from the ISSUE), then serves connections from a
// channel.
type flakyListener struct {
	failures atomic.Int64
	conns    chan net.Conn
	closed   chan struct{}
}

type flakyAddr struct{}

func (flakyAddr) Network() string { return "flaky" }
func (flakyAddr) String() string  { return "flaky" }

func (l *flakyListener) Accept() (net.Conn, error) {
	if l.failures.Add(-1) >= 0 {
		return nil, errors.New("accept: too many open files (synthetic)")
	}
	select {
	case c := <-l.conns:
		return c, nil
	case <-l.closed:
		return nil, net.ErrClosed
	}
}

func (l *flakyListener) Close() error {
	select {
	case <-l.closed:
	default:
		close(l.closed)
	}
	return nil
}

func (l *flakyListener) Addr() net.Addr { return flakyAddr{} }

// TestAcceptBackoffSurvivesTransientErrors injects a listener that fails
// several times before yielding a connection: the old accept loop died on
// the first error (log.Fatalf); the server must instead back off, keep the
// listener, count the errors, and then serve the session normally.
func TestAcceptBackoffSurvivesTransientErrors(t *testing.T) {
	testutil.GuardGoroutines(t)
	const failures = 4
	sk := testKey(t)
	table, sel, want := fixture(t, 20, 10)

	ln := &flakyListener{conns: make(chan net.Conn), closed: make(chan struct{})}
	ln.failures.Store(failures)
	srv, err := New(table, Config{MaxSessions: 2, Logf: discardLogf})
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	clientEnd, serverEnd := net.Pipe()
	defer clientEnd.Close()
	ln.conns <- serverEnd

	sum, err := selectedsum.Query(wire.NewConn(clientEnd), sk, sel, 0, nil)
	if err != nil {
		t.Fatalf("query after flaky accepts: %v", err)
	}
	if sum.Cmp(want) != 0 {
		t.Errorf("sum = %v, want %v", sum, want)
	}
	if got := srv.Metrics().AcceptErrors.Value(); got != failures {
		t.Errorf("accept errors = %d, want %d", got, failures)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Errorf("Shutdown: %v", err)
	}
	if err := <-serveErr; err != ErrServerClosed {
		t.Errorf("Serve = %v, want ErrServerClosed", err)
	}
}

// TestSessionLimitServesOnceAndStops covers cmd/sumserver's -once flag:
// with SessionLimit=1 the server answers one session and shuts itself down.
func TestSessionLimitServesOnceAndStops(t *testing.T) {
	testutil.GuardGoroutines(t)
	sk := testKey(t)
	table, sel, want := fixture(t, 20, 10)
	srv, err := New(table, Config{SessionLimit: 1, Logf: discardLogf})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	sum, err := query(t, ln.Addr().String(), sk, sel, 0)
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if sum.Cmp(want) != 0 {
		t.Errorf("sum = %v, want %v", sum, want)
	}
	select {
	case err := <-serveErr:
		if err != ErrServerClosed {
			t.Errorf("Serve = %v, want ErrServerClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not stop after the session limit")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Errorf("Shutdown: %v", err)
	}
}

// TestSessionPanicIsIsolated: a panic inside one session (injected through
// the WrapConn hook) is recovered, counted, and leaves the server serving.
func TestSessionPanicIsIsolated(t *testing.T) {
	testutil.GuardGoroutines(t)
	sk := testKey(t)
	table, sel, want := fixture(t, 20, 10)
	var calls atomic.Int64
	srv, addr := startServer(t, table, Config{
		MaxSessions: 2,
		WrapConn: func(c net.Conn) (*wire.Conn, error) {
			if calls.Add(1) == 1 {
				panic("poisoned session")
			}
			return wire.NewConn(c), nil
		},
	})
	m := srv.Metrics()

	if _, err := query(t, addr, sk, sel, 0); err == nil {
		t.Error("first query should fail (server side panicked)")
	}
	waitFor(t, 2*time.Second, "panicked session cleanup", func() bool {
		return m.ActiveSessions.Value() == 0
	})
	if got := m.SessionPanics.Value(); got != 1 {
		t.Errorf("panics = %d, want 1", got)
	}

	sum, err := query(t, addr, sk, sel, 0)
	if err != nil {
		t.Fatalf("query after panic: %v", err)
	}
	if sum.Cmp(want) != 0 {
		t.Errorf("sum = %v, want %v", sum, want)
	}
	reconcile(t, srv)
}
