package server

import (
	"net/http"
	"net/http/pprof"

	"privstats/internal/trace"
)

// StatsMuxConfig selects which observability endpoints a daemon's stats
// listener exposes. Nil/false fields are simply not mounted, so the zero
// value is an empty mux and each endpoint is an independent opt-in.
type StatsMuxConfig struct {
	// Stats serves the JSON snapshot at /stats (the original endpoint).
	Stats http.Handler
	// Prom serves the Prometheus text exposition at /metrics.
	Prom http.Handler
	// Traces, when non-nil, serves the recent-trace ring as JSON at /traces.
	Traces *trace.Recorder
	// Jobs, when non-nil, serves the stats-job gateway under /jobs (submit
	// and status; the handler sees paths relative to that prefix).
	Jobs http.Handler
	// Pprof mounts net/http/pprof under /debug/pprof/. Off by default: the
	// stats listener is often bound wider than localhost, and profiles are
	// an operational decision, not a free default.
	Pprof bool
	// Admin maps extra daemon-specific endpoints (e.g. the aggregator's
	// POST /reshard) onto the mux, pattern → handler.
	Admin map[string]http.Handler
}

// StatsMux assembles the observability mux that cmd/sumserver and
// cmd/sumproxy bind to -stats-addr. The pprof handlers are mounted
// explicitly rather than via the package's DefaultServeMux side effects, so
// importing net/http/pprof here does NOT expose profiles on any other mux
// in the process.
func StatsMux(cfg StatsMuxConfig) *http.ServeMux {
	mux := http.NewServeMux()
	if cfg.Stats != nil {
		mux.Handle("/stats", cfg.Stats)
	}
	if cfg.Prom != nil {
		mux.Handle("/metrics", cfg.Prom)
	}
	if cfg.Traces != nil {
		mux.Handle("/traces", cfg.Traces.Handler())
	}
	if cfg.Jobs != nil {
		mux.Handle("/jobs", http.StripPrefix("/jobs", cfg.Jobs))
		mux.Handle("/jobs/", http.StripPrefix("/jobs", cfg.Jobs))
	}
	for pattern, h := range cfg.Admin {
		mux.Handle(pattern, h)
	}
	if cfg.Pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}
