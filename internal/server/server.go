// Package server is the production runtime for the selected-sum protocol's
// database side. The protocol engine (internal/selectedsum) answers exactly
// one session on one framed connection; this package owns everything around
// that: the listener lifecycle, an accept loop that survives transient
// failures, semaphore-based admission control with fast busy rejection,
// per-session deadlines and panic isolation, context-driven graceful
// shutdown, and a live metrics feed (internal/metrics).
//
// The shape mirrors net/http.Server deliberately — New, Serve,
// ListenAndServe, Shutdown, Close, ErrServerClosed — so operational
// expectations transfer: Serve blocks until shutdown, Shutdown stops
// accepting and drains in-flight sessions until its context expires, Close
// force-closes everything.
package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"privstats/internal/database"
	"privstats/internal/metrics"
	"privstats/internal/selectedsum"
	"privstats/internal/trace"
	"privstats/internal/wire"
)

// ErrServerClosed is returned by Serve and ListenAndServe after Shutdown or
// Close, matching the net/http convention.
var ErrServerClosed = errors.New("server: closed")

// Defaults for zero Config fields.
const (
	// DefaultMaxSessions caps concurrent sessions when Config.MaxSessions
	// is zero. Each session costs one goroutine plus the homomorphic fold;
	// 64 keeps a stock host responsive under the paper's 1024-bit keys.
	DefaultMaxSessions = 64
	// DefaultRejectTimeout bounds the busy-reply exchange with an
	// over-admission client.
	DefaultRejectTimeout = time.Second
	// minAcceptBackoff and maxAcceptBackoff bound the retry delay after a
	// transient Accept failure (e.g. EMFILE), doubling in between.
	minAcceptBackoff = 5 * time.Millisecond
	maxAcceptBackoff = time.Second
)

// Config tunes a Server. The zero value is serviceable: default admission
// cap, no timeouts, metrics allocated internally, logging via the standard
// logger.
type Config struct {
	// MaxSessions is the admission cap: at most this many sessions run
	// concurrently; connections beyond it receive an immediate MsgError
	// busy reply and are closed. Zero means DefaultMaxSessions; negative
	// is rejected by New.
	MaxSessions int

	// SessionLimit, when positive, shuts the server down (gracefully) after
	// this many sessions have finished. cmd/sumserver's -once flag is
	// SessionLimit=1.
	SessionLimit int64

	// IdleTimeout bounds the wait for each client frame: a session whose
	// client goes quiet longer than this is failed with a best-effort
	// MsgError and its slot released. Zero means wait forever.
	IdleTimeout time.Duration

	// WriteTimeout bounds each frame write to a client. Zero means no
	// bound.
	WriteTimeout time.Duration

	// SessionTimeout is an absolute cap on a whole session, enforced as a
	// connection deadline that idle extensions cannot move past. Zero
	// means no cap.
	SessionTimeout time.Duration

	// RejectTimeout bounds the busy reply to an over-admission client.
	// Zero means DefaultRejectTimeout.
	RejectTimeout time.Duration

	// LogEvery, when positive, emits a one-line metrics summary to Logf at
	// this interval while the server runs.
	LogEvery time.Duration

	// WrapConn frames an accepted connection, e.g. through a netsim
	// throttle. Nil means plain wire.NewConn. The server installs its
	// deadline policy on the raw net.Conn regardless of wrapping.
	WrapConn func(net.Conn) (*wire.Conn, error)

	// Metrics receives the server's counters; nil allocates a fresh set
	// (retrievable via Server.Metrics).
	Metrics *metrics.ServerMetrics

	// Traces, when non-nil, records a per-request trace for every session
	// whose Hello carried a trace ID (see internal/trace): the handler's
	// phase spans plus the session outcome land in this ring, served from
	// /traces. Nil disables tracing entirely at zero per-session cost.
	Traces *trace.Recorder

	// Logf receives operational log lines; nil means log.Printf.
	Logf func(format string, args ...any)
}

// Handler answers one protocol session on a framed connection. The default
// handler is the selected-sum fold over a table; the cluster aggregator
// installs its fan-out session instead and inherits the whole runtime —
// admission control, deadlines, panic isolation, graceful shutdown, /stats.
//
// timings is never nil; handlers fill in whatever phases they measure (a
// handler observing a failed session still reports the phases that
// completed).
type Handler interface {
	ServeSession(conn *wire.Conn, timings *selectedsum.PhaseTimings) error
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(conn *wire.Conn, timings *selectedsum.PhaseTimings) error

// ServeSession implements Handler.
func (f HandlerFunc) ServeSession(conn *wire.Conn, timings *selectedsum.PhaseTimings) error {
	return f(conn, timings)
}

// sourceHandler is the stock selected-sum session over one table source —
// in-memory or disk-backed, the session logic is identical.
type sourceHandler struct{ src database.Source }

func (h sourceHandler) ServeSession(conn *wire.Conn, timings *selectedsum.PhaseTimings) error {
	return selectedsum.ServeSource(conn, h.src, timings)
}

// Server runs protocol sessions behind admission control. Create with New
// (table sessions) or NewHandler (any session handler); all methods are
// safe for concurrent use.
type Server struct {
	handler Handler
	cfg     Config
	m       *metrics.ServerMetrics
	logf    func(format string, args ...any)

	sem    chan struct{} // admission slots; len == active admitted sessions
	served atomic.Int64  // finished sessions, for SessionLimit

	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	active    map[net.Conn]struct{}
	closing   bool
	wg        sync.WaitGroup // in-flight admitted sessions

	done     chan struct{} // closed when shutdown begins
	doneOnce sync.Once
	logOnce  sync.Once
}

// New builds a Server answering selected-sum sessions against table. The
// table is shared by all sessions and must not be mutated while the server
// runs.
func New(table *database.Table, cfg Config) (*Server, error) {
	if table == nil {
		return nil, errors.New("server: nil table")
	}
	return NewSource(table, cfg)
}

// NewSource builds a Server answering selected-sum sessions against any
// table source — an in-memory Table or a disk-backed column store. The
// source may grow (appends) while the server runs; each session snapshots
// its visible length at the hello.
func NewSource(src database.Source, cfg Config) (*Server, error) {
	if src == nil {
		return nil, errors.New("server: nil source")
	}
	return NewHandler(sourceHandler{src: src}, cfg)
}

// NewHandler builds a Server that runs each admitted session through h.
func NewHandler(h Handler, cfg Config) (*Server, error) {
	if h == nil {
		return nil, errors.New("server: nil handler")
	}
	if cfg.MaxSessions < 0 {
		return nil, fmt.Errorf("server: negative MaxSessions %d", cfg.MaxSessions)
	}
	if cfg.MaxSessions == 0 {
		cfg.MaxSessions = DefaultMaxSessions
	}
	if cfg.RejectTimeout <= 0 {
		cfg.RejectTimeout = DefaultRejectTimeout
	}
	m := cfg.Metrics
	if m == nil {
		m = &metrics.ServerMetrics{}
	}
	logf := cfg.Logf
	if logf == nil {
		logf = log.Printf
	}
	return &Server{
		handler:   h,
		cfg:       cfg,
		m:         m,
		logf:      logf,
		sem:       make(chan struct{}, cfg.MaxSessions),
		listeners: make(map[net.Listener]struct{}),
		active:    make(map[net.Conn]struct{}),
		done:      make(chan struct{}),
	}, nil
}

// Metrics returns the server's metrics set (the one from Config, or the
// internally allocated one).
func (s *Server) Metrics() *metrics.ServerMetrics { return s.m }

// Traces returns the trace recorder from Config; nil when tracing is off.
func (s *Server) Traces() *trace.Recorder { return s.cfg.Traces }

// ActiveSessions returns the number of sessions currently running.
func (s *Server) ActiveSessions() int { return len(s.sem) }

// ListenAndServe listens on addr (TCP) and calls Serve.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("server: listen %s: %w", addr, err)
	}
	return s.Serve(ln)
}

// Serve accepts connections on ln until shutdown, running each admitted one
// as a session. Transient accept errors are retried with exponential
// backoff — the loop never terminates the server on its own (the fix for
// the log.Fatalf fragility this package replaces). Serve returns
// ErrServerClosed after Shutdown or Close, or the accept error if ln was
// closed by someone else.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		ln.Close()
		return ErrServerClosed
	}
	s.listeners[ln] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.listeners, ln)
		s.mu.Unlock()
	}()

	s.m.StartClock(time.Now())
	s.startLogLoop()

	backoff := minAcceptBackoff
	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.shuttingDown() {
				return ErrServerClosed
			}
			if errors.Is(err, net.ErrClosed) {
				// Listener closed under us outside of Shutdown: nothing
				// left to accept, surface it.
				return fmt.Errorf("server: listener closed: %w", err)
			}
			s.m.AcceptErrors.Inc()
			s.logf("server: accept: %v; retrying in %v", err, backoff)
			select {
			case <-time.After(backoff):
			case <-s.done:
				return ErrServerClosed
			}
			if backoff *= 2; backoff > maxAcceptBackoff {
				backoff = maxAcceptBackoff
			}
			continue
		}
		backoff = minAcceptBackoff
		s.dispatch(conn)
	}
}

// dispatch admits conn into a session slot or rejects it with a busy reply.
func (s *Server) dispatch(conn net.Conn) {
	select {
	case s.sem <- struct{}{}:
	default:
		s.m.SessionsRejected.Inc()
		go s.rejectBusy(conn)
		return
	}

	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		<-s.sem
		conn.Close()
		return
	}
	s.active[conn] = struct{}{}
	s.wg.Add(1)
	s.mu.Unlock()

	s.m.SessionsStarted.Inc()
	s.m.ActiveSessions.Inc()
	go s.runSession(conn)
}

// rejectBusy tells an over-admission client the server is full, quickly and
// without consuming a session slot. The client may already be streaming its
// index vector, so after sending the error we drain its writes until it
// hangs up (or the reject deadline passes) — closing with unread data would
// RST the connection and could destroy the busy reply before the client
// reads it.
func (s *Server) rejectBusy(conn net.Conn) {
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(s.cfg.RejectTimeout))
	wc := wire.NewConn(conn)
	if err := wc.SendErrorCode(wire.CodeBusy, "server busy: all session slots in use, try again later"); err != nil {
		return
	}
	_, _ = io.Copy(io.Discard, conn)
}

// runSession owns one admitted connection: framing, deadlines, the protocol
// exchange, metrics, and cleanup. Panics are isolated to the session.
func (s *Server) runSession(conn net.Conn) {
	defer s.wg.Done()
	defer func() { <-s.sem }()
	defer s.m.ActiveSessions.Dec()
	defer func() {
		s.mu.Lock()
		delete(s.active, conn)
		s.mu.Unlock()
		conn.Close()
		s.noteServed()
	}()

	start := time.Now()
	err := s.serveSession(conn)
	s.m.SessionNanos.ObserveDuration(time.Since(start))
	if err != nil {
		s.m.SessionsFailed.Inc()
		s.logf("server: session from %s failed: %v", conn.RemoteAddr(), err)
		return
	}
	s.m.SessionsCompleted.Inc()
}

// serveSession runs the protocol on conn and converts panics into errors so
// one poisoned session cannot take down the server.
func (s *Server) serveSession(conn net.Conn) (err error) {
	defer func() {
		if r := recover(); r != nil {
			s.m.SessionPanics.Inc()
			s.logf("server: session from %s panicked: %v\n%s", conn.RemoteAddr(), r, debug.Stack())
			err = fmt.Errorf("server: session panic: %v", r)
		}
	}()

	var wc *wire.Conn
	if s.cfg.WrapConn != nil {
		wc, err = s.cfg.WrapConn(conn)
		if err != nil {
			return fmt.Errorf("server: framing connection: %w", err)
		}
	} else {
		wc = wire.NewConn(conn)
	}

	// Deadlines always land on the raw net.Conn, even when WrapConn put a
	// throttle (which has no deadline support) between framing and socket.
	// A SessionTimeout becomes an absolute cap that per-frame idle/write
	// extensions cannot move past.
	dl := wire.Deadliner(conn)
	if s.cfg.SessionTimeout > 0 {
		cap := time.Now().Add(s.cfg.SessionTimeout)
		_ = conn.SetDeadline(cap)
		dl = cappedDeadliner{dl: conn, cap: cap}
	}
	wc.SetDeadliner(dl)
	wc.SetIdleTimeout(s.cfg.IdleTimeout)
	wc.SetWriteTimeout(s.cfg.WriteTimeout)

	var phases selectedsum.PhaseTimings
	if s.cfg.Traces != nil {
		phases.Trace = trace.New(conn.RemoteAddr().String())
	}
	err = s.handler.ServeSession(wc, &phases)

	if phases.Trace != nil {
		phases.Trace.Finish(err)
		// Add drops ID-less traces: a client that sent no trace trailer
		// asked for no trace, and gets none.
		s.cfg.Traces.Add(phases.Trace)
	}

	s.m.HelloNanos.ObserveDuration(phases.Hello)
	s.m.AbsorbNanos.ObserveDuration(phases.Absorb)
	s.m.FinalizeNanos.ObserveDuration(phases.Finalize)
	out, in, _, _ := wc.Meter.Snapshot()
	s.m.BytesIn.Add(in)
	s.m.BytesOut.Add(out)

	if err != nil && wire.IsTimeout(err) {
		// Tell the quiet client why it is being hung up on. Best effort:
		// give the write its own short deadline (the expired one was the
		// read side's, but a passed SessionTimeout cap fails this fast,
		// which is fine).
		_ = conn.SetWriteDeadline(time.Now().Add(DefaultRejectTimeout))
		_ = wc.SendErrorCode(wire.CodeTimeout, "session timed out waiting for client")
		return fmt.Errorf("server: session idle timeout: %w", err)
	}
	return err
}

// noteServed triggers self-shutdown once SessionLimit sessions finished.
func (s *Server) noteServed() {
	if s.cfg.SessionLimit <= 0 {
		return
	}
	if s.served.Add(1) == s.cfg.SessionLimit {
		go s.beginShutdown()
	}
}

// shuttingDown reports whether shutdown has begun.
func (s *Server) shuttingDown() bool {
	select {
	case <-s.done:
		return true
	default:
		return false
	}
}

// beginShutdown stops admission: marks the server closing and closes every
// registered listener. In-flight sessions keep running.
func (s *Server) beginShutdown() {
	s.doneOnce.Do(func() {
		s.mu.Lock()
		s.closing = true
		// Order matters: mark shutdown (close done) before closing the
		// listeners, so an accept loop seeing net.ErrClosed can tell an
		// intentional shutdown from an externally closed listener.
		close(s.done)
		for ln := range s.listeners {
			ln.Close()
		}
		s.mu.Unlock()
	})
}

// Shutdown gracefully stops the server: no new connections are accepted,
// and in-flight sessions are drained. If ctx expires first, remaining
// sessions are force-closed and ctx's error returned; a clean drain returns
// nil.
func (s *Server) Shutdown(ctx context.Context) error {
	s.beginShutdown()
	drained := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		s.closeActive()
		<-drained // sessions unblock promptly once their conns are closed
		return ctx.Err()
	}
}

// Close force-stops the server: listeners and all in-flight session
// connections are closed immediately.
func (s *Server) Close() error {
	s.beginShutdown()
	s.closeActive()
	s.wg.Wait()
	return nil
}

// closeActive force-closes every in-flight session connection.
func (s *Server) closeActive() {
	s.mu.Lock()
	for conn := range s.active {
		conn.Close()
	}
	s.mu.Unlock()
}

// startLogLoop emits the periodic metrics summary when configured.
func (s *Server) startLogLoop() {
	if s.cfg.LogEvery <= 0 {
		return
	}
	s.logOnce.Do(func() {
		go func() {
			t := time.NewTicker(s.cfg.LogEvery)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					s.logf("server: %s", s.m.Summary())
				case <-s.done:
					return
				}
			}
		}()
	})
}

// cappedDeadliner forwards deadline control but never lets a deadline move
// past the session's absolute cap (zero deadlines — "no deadline" — are
// replaced by the cap as well).
type cappedDeadliner struct {
	dl  wire.Deadliner
	cap time.Time
}

func (c cappedDeadliner) SetReadDeadline(t time.Time) error {
	return c.dl.SetReadDeadline(c.clamp(t))
}

func (c cappedDeadliner) SetWriteDeadline(t time.Time) error {
	return c.dl.SetWriteDeadline(c.clamp(t))
}

func (c cappedDeadliner) clamp(t time.Time) time.Time {
	if t.IsZero() || t.After(c.cap) {
		return c.cap
	}
	return t
}
