package server

import (
	"context"
	"crypto/rand"
	"math/big"
	"net"
	"sync"
	"testing"
	"time"

	"privstats/internal/database"
	"privstats/internal/homomorphic"
	"privstats/internal/paillier"
	"privstats/internal/selectedsum"
	"privstats/internal/wire"
)

var (
	tkOnce sync.Once
	tkKey  *paillier.PrivateKey
	tkErr  error
)

// testKey returns a shared 256-bit test key (generated once per package).
// Importing the paillier package also registers the scheme the sessions
// parse out of the client hello.
func testKey(t testing.TB) homomorphic.PrivateKey {
	t.Helper()
	tkOnce.Do(func() { tkKey, tkErr = paillier.KeyGen(rand.Reader, 256) })
	if tkErr != nil {
		t.Fatalf("KeyGen: %v", tkErr)
	}
	return paillier.SchemeKey{SK: tkKey}
}

// fixture builds a deterministic table and selection with its expected sum.
func fixture(t testing.TB, n, m int) (*database.Table, *database.Selection, *big.Int) {
	t.Helper()
	table, err := database.Generate(n, database.DistSmall, 42)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := database.GenerateSelection(n, m, database.PatternRandom, 7)
	if err != nil {
		t.Fatal(err)
	}
	want, err := table.SelectedSum(sel)
	if err != nil {
		t.Fatal(err)
	}
	return table, sel, want
}

// discardLogf silences server logging in tests; the default log.Printf (and
// t.Logf) would race with test completion when background sessions wind
// down.
func discardLogf(string, ...any) {}

// startServer runs a Server on loopback TCP and tears it down with the
// test. It returns the server and its dial address.
func startServer(t *testing.T, table *database.Table, cfg Config) (*Server, string) {
	t.Helper()
	if cfg.Logf == nil {
		cfg.Logf = discardLogf
	}
	srv, err := New(table, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
		select {
		case err := <-errc:
			if err != ErrServerClosed {
				t.Errorf("Serve returned %v, want ErrServerClosed", err)
			}
		case <-time.After(5 * time.Second):
			t.Error("Serve did not return after Shutdown")
		}
	})
	return srv, ln.Addr().String()
}

// query runs one complete client session against addr.
func query(t *testing.T, addr string, sk homomorphic.PrivateKey, sel *database.Selection, chunk int) (*big.Int, error) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	return selectedsum.Query(wire.NewConn(conn), sk, sel, chunk, nil)
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// reconcile asserts the session-counter invariant once the server is idle:
// started = completed + failed, and nothing is left active.
func reconcile(t *testing.T, srv *Server) {
	t.Helper()
	m := srv.Metrics()
	waitFor(t, 5*time.Second, "active sessions to drain", func() bool {
		return m.ActiveSessions.Value() == 0
	})
	started := m.SessionsStarted.Value()
	completed := m.SessionsCompleted.Value()
	failed := m.SessionsFailed.Value()
	if started != completed+failed {
		t.Errorf("counters do not reconcile: started=%d completed=%d failed=%d", started, completed, failed)
	}
}

func TestSingleSessionEndToEnd(t *testing.T) {
	sk := testKey(t)
	table, sel, want := fixture(t, 50, 25)
	srv, addr := startServer(t, table, Config{})

	sum, err := query(t, addr, sk, sel, 0)
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if sum.Cmp(want) != 0 {
		t.Errorf("sum = %v, want %v", sum, want)
	}
	reconcile(t, srv)
	m := srv.Metrics()
	if m.SessionsCompleted.Value() != 1 || m.SessionsFailed.Value() != 0 {
		t.Errorf("completed=%d failed=%d", m.SessionsCompleted.Value(), m.SessionsFailed.Value())
	}
	if m.BytesIn.Value() == 0 || m.BytesOut.Value() == 0 {
		t.Errorf("byte counters empty: in=%d out=%d", m.BytesIn.Value(), m.BytesOut.Value())
	}
	if m.AbsorbNanos.Snapshot().Count != 1 {
		t.Errorf("absorb histogram count = %d, want 1", m.AbsorbNanos.Snapshot().Count)
	}
}

func TestStress32ConcurrentSessions(t *testing.T) {
	const clients = 32
	sk := testKey(t)
	table, sel, want := fixture(t, 40, 20)
	srv, addr := startServer(t, table, Config{MaxSessions: clients})

	var wg sync.WaitGroup
	errs := make([]error, clients)
	sums := make([]*big.Int, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Vary the chunking so the sessions exercise different frame
			// patterns concurrently.
			sums[i], errs[i] = query(t, addr, sk, sel, 1+i%7)
		}(i)
	}
	wg.Wait()

	for i := 0; i < clients; i++ {
		if errs[i] != nil {
			t.Fatalf("client %d: %v", i, errs[i])
		}
		if sums[i].Cmp(want) != 0 {
			t.Errorf("client %d: sum = %v, want %v", i, sums[i], want)
		}
	}
	reconcile(t, srv)
	m := srv.Metrics()
	if got := m.SessionsCompleted.Value(); got != clients {
		t.Errorf("completed = %d, want %d", got, clients)
	}
	if got := m.SessionsRejected.Value(); got != 0 {
		t.Errorf("rejected = %d, want 0", got)
	}
	if got := m.ActiveSessions.Value(); got != 0 {
		t.Errorf("active gauge = %d, want 0", got)
	}
	if max := m.ActiveSessions.Max(); max < 1 || max > clients {
		t.Errorf("active high-water mark = %d, want in [1,%d]", max, clients)
	}
}
