package server

import (
	"math/big"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"privstats/internal/selectedsum"
	"privstats/internal/wire"
)

// TestAdmissionBurst16Against4Slots is the ISSUE's acceptance scenario:
// with -max-sessions 4, a burst of 16 connections yields exactly 4 admitted
// sessions; the other 12 receive a busy MsgError within 1s; and the
// admitted 4 all complete correctly. Connections are opened one at a time
// and triage is observed through the metrics, which makes the 4/12 split
// deterministic: the first four take the slots (their sessions idle,
// waiting for a hello that is only sent later), every later connection is
// rejected.
func TestAdmissionBurst16Against4Slots(t *testing.T) {
	const (
		slots = 4
		burst = 16
	)
	sk := testKey(t)
	table, sel, want := fixture(t, 30, 15)
	srv, addr := startServer(t, table, Config{MaxSessions: slots})
	m := srv.Metrics()

	triaged := func() int64 {
		return m.SessionsStarted.Value() + m.SessionsRejected.Value()
	}

	conns := make([]net.Conn, 0, burst)
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()
	for i := 0; i < burst; i++ {
		c, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatalf("dial %d: %v", i, err)
		}
		conns = append(conns, c)
		n := int64(i + 1)
		waitFor(t, 2*time.Second, "connection triage", func() bool { return triaged() == n })
	}

	if got := m.SessionsStarted.Value(); got != slots {
		t.Errorf("started = %d, want %d", got, slots)
	}
	if got := m.SessionsRejected.Value(); got != burst-slots {
		t.Errorf("rejected = %d, want %d", got, burst-slots)
	}
	if got := m.ActiveSessions.Value(); got != slots {
		t.Errorf("active = %d, want %d", got, slots)
	}

	// Every rejected connection must deliver a busy MsgError within 1s.
	for i := slots; i < burst; i++ {
		start := time.Now()
		wc := wire.NewConn(conns[i])
		wc.SetIdleTimeout(time.Second)
		f, err := wc.Recv()
		if err != nil {
			t.Fatalf("rejected conn %d: reading busy reply: %v", i, err)
		}
		if f.Type != wire.MsgError || !strings.Contains(string(f.Payload), "busy") {
			t.Errorf("rejected conn %d: frame %#x %q, want busy MsgError", i, byte(f.Type), f.Payload)
		}
		if d := time.Since(start); d > time.Second {
			t.Errorf("rejected conn %d: busy reply took %v, want <1s", i, d)
		}
	}

	// The four admitted connections now run their sessions concurrently
	// and must all produce the correct sum.
	var wg sync.WaitGroup
	sums := make([]*big.Int, slots)
	errs := make([]error, slots)
	for i := 0; i < slots; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sums[i], errs[i] = selectedsum.Query(wire.NewConn(conns[i]), sk, sel, 8, nil)
		}(i)
	}
	wg.Wait()
	for i := 0; i < slots; i++ {
		if errs[i] != nil {
			t.Fatalf("admitted conn %d: %v", i, errs[i])
		}
		if sums[i].Cmp(want) != 0 {
			t.Errorf("admitted conn %d: sum = %v, want %v", i, sums[i], want)
		}
	}

	reconcile(t, srv)
	// The concurrency cap held for the whole burst.
	if max := m.ActiveSessions.Max(); max != slots {
		t.Errorf("active high-water mark = %d, want exactly %d", max, slots)
	}
	if got := m.SessionsCompleted.Value(); got != slots {
		t.Errorf("completed = %d, want %d", got, slots)
	}
}

// TestRejectedSlotNeverConsumed checks a rejected connection does not leak
// an admission slot: after the busy reply the cap is still fully available.
func TestRejectedSlotNeverConsumed(t *testing.T) {
	sk := testKey(t)
	table, sel, want := fixture(t, 20, 10)
	srv, addr := startServer(t, table, Config{MaxSessions: 1})
	m := srv.Metrics()

	// Occupy the only slot with a connection that never speaks.
	hold, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, "slot occupied", func() bool {
		return m.SessionsStarted.Value() == 1
	})

	// Overflow connection gets rejected.
	over, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer over.Close()
	wc := wire.NewConn(over)
	wc.SetIdleTimeout(time.Second)
	if f, err := wc.Recv(); err != nil || f.Type != wire.MsgError {
		t.Fatalf("overflow conn: frame %v err %v, want MsgError", f, err)
	}

	// Release the slot; the next client must get in and succeed.
	hold.Close()
	waitFor(t, 2*time.Second, "slot released", func() bool {
		return m.ActiveSessions.Value() == 0
	})
	sum, err := query(t, addr, sk, sel, 0)
	if err != nil {
		t.Fatalf("query after release: %v", err)
	}
	if sum.Cmp(want) != 0 {
		t.Errorf("sum = %v, want %v", sum, want)
	}
	reconcile(t, srv)
}
