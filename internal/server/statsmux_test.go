package server

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"privstats/internal/metrics"
	"privstats/internal/trace"
)

// TestStatsMuxMounts checks the opt-in matrix: every endpoint is present
// exactly when configured, and pprof stays off the mux unless asked for —
// profiles on a wide-bound stats port must be a deliberate choice.
func TestStatsMuxMounts(t *testing.T) {
	sm := &metrics.ServerMetrics{}
	jobs := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Echo the stripped path so the test can assert the prefix handling.
		w.Header().Set("X-Jobs-Path", r.URL.Path)
	})
	full := StatsMux(StatsMuxConfig{
		Stats:  sm.Handler(),
		Prom:   metrics.PromHandler(sm, nil),
		Traces: trace.NewRecorder(4),
		Jobs:   jobs,
		Pprof:  true,
	})
	empty := StatsMux(StatsMuxConfig{})

	cases := []struct {
		path       string
		full, none int
	}{
		{"/stats", http.StatusOK, http.StatusNotFound},
		{"/metrics", http.StatusOK, http.StatusNotFound},
		{"/traces", http.StatusOK, http.StatusNotFound},
		{"/jobs", http.StatusOK, http.StatusNotFound},
		{"/jobs/some-id", http.StatusOK, http.StatusNotFound},
		{"/debug/pprof/", http.StatusOK, http.StatusNotFound},
		{"/debug/pprof/cmdline", http.StatusOK, http.StatusNotFound},
	}
	for _, tc := range cases {
		for _, m := range []struct {
			name string
			mux  *http.ServeMux
			want int
		}{{"full", full, tc.full}, {"empty", empty, tc.none}} {
			rr := httptest.NewRecorder()
			m.mux.ServeHTTP(rr, httptest.NewRequest("GET", tc.path, nil))
			if rr.Code != m.want {
				t.Errorf("%s mux GET %s = %d, want %d", m.name, tc.path, rr.Code, m.want)
			}
		}
	}

	rr := httptest.NewRecorder()
	full.ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rr.Header().Get("Content-Type"); ct != metrics.PromContentType {
		t.Errorf("/metrics Content-Type = %q, want %q", ct, metrics.PromContentType)
	}

	// The jobs handler sees paths relative to its /jobs mount.
	for path, want := range map[string]string{"/jobs": "", "/jobs/abc123": "/abc123"} {
		rr := httptest.NewRecorder()
		full.ServeHTTP(rr, httptest.NewRequest("GET", path, nil))
		if got := rr.Header().Get("X-Jobs-Path"); got != want {
			t.Errorf("GET %s reached jobs handler with path %q, want %q", path, got, want)
		}
	}
}
