package wire

import (
	"bytes"
	"errors"
	"io"
	"net"
	"strings"
	"testing"
	"testing/quick"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("hello, selected sum")
	wn, err := WriteFrame(&buf, MsgHello, payload)
	if err != nil {
		t.Fatal(err)
	}
	if wn != 5+len(payload) {
		t.Errorf("wrote %d bytes, want %d", wn, 5+len(payload))
	}
	f, rn, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rn != wn {
		t.Errorf("read %d bytes, wrote %d", rn, wn)
	}
	if f.Type != MsgHello || !bytes.Equal(f.Payload, payload) {
		t.Errorf("frame = %+v", f)
	}
}

func TestFrameRoundTripProperty(t *testing.T) {
	prop := func(t8 uint8, payload []byte) bool {
		var buf bytes.Buffer
		if _, err := WriteFrame(&buf, MsgType(t8), payload); err != nil {
			return false
		}
		f, _, err := ReadFrame(&buf)
		if err != nil {
			return false
		}
		return f.Type == MsgType(t8) && bytes.Equal(f.Payload, payload)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestFrameEmptyPayload(t *testing.T) {
	var buf bytes.Buffer
	if _, err := WriteFrame(&buf, MsgDone, nil); err != nil {
		t.Fatal(err)
	}
	f, _, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != MsgDone || len(f.Payload) != 0 {
		t.Errorf("frame = %+v", f)
	}
}

func TestReadFrameRejectsOversizedDeclaration(t *testing.T) {
	// Hand-craft a header declaring MaxFrame+1 bytes.
	hdr := []byte{byte(MsgIndexChunk), 0xFF, 0xFF, 0xFF, 0xFF}
	_, _, err := ReadFrame(bytes.NewReader(hdr))
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
}

func TestReadFrameTruncated(t *testing.T) {
	var buf bytes.Buffer
	if _, err := WriteFrame(&buf, MsgSum, []byte("abcdef")); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	for cut := 1; cut < len(b); cut++ {
		if _, _, err := ReadFrame(bytes.NewReader(b[:cut])); err == nil {
			t.Fatalf("truncation at %d bytes should fail", cut)
		}
	}
}

func TestWriteFrameRejectsHugePayload(t *testing.T) {
	huge := make([]byte, MaxFrame+1)
	if _, err := WriteFrame(io.Discard, MsgIndexChunk, huge); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
}

func TestHelloRoundTrip(t *testing.T) {
	h := &Hello{
		Version:   Version,
		Scheme:    "paillier",
		PublicKey: []byte{1, 2, 3, 4, 5},
		VectorLen: 100000,
		ChunkLen:  100,
	}
	got, err := DecodeHello(h.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != h.Version || got.Scheme != h.Scheme ||
		!bytes.Equal(got.PublicKey, h.PublicKey) ||
		got.VectorLen != h.VectorLen || got.ChunkLen != h.ChunkLen {
		t.Errorf("got %+v, want %+v", got, h)
	}
}

func TestHelloRoundTripProperty(t *testing.T) {
	prop := func(scheme string, key []byte, n uint64, chunk uint32) bool {
		if len(scheme) > 255 {
			scheme = scheme[:255]
		}
		h := &Hello{Version: Version, Scheme: scheme, PublicKey: key, VectorLen: n, ChunkLen: chunk}
		got, err := DecodeHello(h.Encode())
		if err != nil {
			return false
		}
		return got.Scheme == scheme && bytes.Equal(got.PublicKey, key) &&
			got.VectorLen == n && got.ChunkLen == chunk
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeHelloRejectsCorruption(t *testing.T) {
	h := &Hello{Version: 1, Scheme: "paillier", PublicKey: []byte{9}, VectorLen: 5, ChunkLen: 1}
	good := h.Encode()
	cases := [][]byte{
		nil,
		good[:3],
		good[:len(good)-1],
		append(append([]byte{}, good...), 0xAA),
	}
	for i, b := range cases {
		if _, err := DecodeHello(b); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
	// Absurd scheme length.
	bad := append([]byte{}, good...)
	bad[4], bad[5], bad[6], bad[7] = 0xFF, 0xFF, 0xFF, 0xFF
	if _, err := DecodeHello(bad); err == nil {
		t.Error("giant scheme length should fail")
	}
}

func TestIndexChunkRoundTrip(t *testing.T) {
	width := 16
	body := make([]byte, 3*width)
	for i := range body {
		body[i] = byte(i)
	}
	c := &IndexChunk{Offset: 4242, Ciphertexts: body, Width: width}
	if c.Count() != 3 {
		t.Fatalf("Count = %d, want 3", c.Count())
	}
	got, err := DecodeIndexChunk(c.Encode(), width)
	if err != nil {
		t.Fatal(err)
	}
	if got.Offset != 4242 || got.Count() != 3 {
		t.Errorf("decoded %+v", got)
	}
	for i := 0; i < 3; i++ {
		if !bytes.Equal(got.At(i), body[i*width:(i+1)*width]) {
			t.Errorf("ciphertext %d corrupted", i)
		}
	}
}

func TestDecodeIndexChunkValidation(t *testing.T) {
	if _, err := DecodeIndexChunk([]byte{1, 2, 3}, 16); err == nil {
		t.Error("short chunk should fail")
	}
	if _, err := DecodeIndexChunk(make([]byte, 8+17), 16); err == nil {
		t.Error("ragged body should fail")
	}
	if _, err := DecodeIndexChunk(make([]byte, 24), 0); err == nil {
		t.Error("zero width should fail")
	}
	// Empty body is a legal (if useless) chunk.
	c, err := DecodeIndexChunk(make([]byte, 8), 16)
	if err != nil || c.Count() != 0 {
		t.Errorf("empty chunk: %v, count %d", err, c.Count())
	}
}

func TestMeterCounts(t *testing.T) {
	var m Meter
	m.AddOut(100)
	m.AddOut(50)
	m.AddIn(7)
	out, in, fo, fi := m.Snapshot()
	if out != 150 || in != 7 || fo != 2 || fi != 1 {
		t.Errorf("snapshot = (%d,%d,%d,%d)", out, in, fo, fi)
	}
	if m.TotalBytes() != 157 {
		t.Errorf("TotalBytes = %d", m.TotalBytes())
	}
	m.Reset()
	if m.TotalBytes() != 0 {
		t.Error("Reset did not zero counters")
	}
}

func TestConnOverPipe(t *testing.T) {
	a, b := net.Pipe()
	ca, cb := NewConn(a), NewConn(b)
	defer ca.Close()
	defer cb.Close()

	done := make(chan error, 1)
	go func() {
		f, err := cb.Recv()
		if err != nil {
			done <- err
			return
		}
		if f.Type != MsgHello {
			done <- errors.New("wrong type")
			return
		}
		done <- cb.Send(MsgSum, []byte("response"))
	}()

	if err := ca.Send(MsgHello, []byte("request")); err != nil {
		t.Fatal(err)
	}
	f, err := ca.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if string(f.Payload) != "response" {
		t.Errorf("payload = %q", f.Payload)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	out, in, _, _ := ca.Meter.Snapshot()
	if out != int64(5+len("request")) || in != int64(5+len("response")) {
		t.Errorf("meter = (%d, %d)", out, in)
	}
}

func TestConnSendError(t *testing.T) {
	a, b := net.Pipe()
	ca, cb := NewConn(a), NewConn(b)
	defer ca.Close()
	defer cb.Close()
	go func() { _ = ca.SendError("database on fire") }()
	f, err := cb.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != MsgError {
		t.Fatalf("type = %v", f.Type)
	}
	perr := DecodeError(f.Payload)
	if !strings.Contains(perr.Error(), "database on fire") {
		t.Errorf("err = %v", perr)
	}
}

func TestChunkWireSize(t *testing.T) {
	// Must agree byte-for-byte with what Send(MsgIndexChunk, Encode()) puts
	// on the wire.
	width := 32
	body := make([]byte, 5*width)
	c := &IndexChunk{Offset: 0, Ciphertexts: body, Width: width}
	var buf bytes.Buffer
	n, err := WriteFrame(&buf, MsgIndexChunk, c.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got := ChunkWireSize(5, width); got != n {
		t.Errorf("ChunkWireSize = %d, actual frame = %d", got, n)
	}
}

func TestHelloRowOffsetRoundTrip(t *testing.T) {
	h := &Hello{
		Version:   Version,
		Scheme:    "paillier",
		PublicKey: []byte{7, 8, 9},
		VectorLen: 2500,
		ChunkLen:  100,
		RowOffset: 5000,
	}
	got, err := DecodeHello(h.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.RowOffset != h.RowOffset || got.VectorLen != h.VectorLen {
		t.Errorf("got offset %d len %d, want %d %d", got.RowOffset, got.VectorLen, h.RowOffset, h.VectorLen)
	}
}

// A pre-cluster hello (12-byte trailer, no RowOffset field) must still
// decode, with the offset defaulting to zero.
func TestDecodeHelloLegacyTrailer(t *testing.T) {
	h := &Hello{Version: Version, Scheme: "paillier", PublicKey: []byte{1}, VectorLen: 42, ChunkLen: 7}
	legacy := h.Encode()
	legacy = legacy[:len(legacy)-8] // strip the RowOffset trailer
	got, err := DecodeHello(legacy)
	if err != nil {
		t.Fatal(err)
	}
	if got.RowOffset != 0 || got.VectorLen != 42 || got.ChunkLen != 7 {
		t.Errorf("legacy decode got %+v", got)
	}
}
