package wire

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"testing"
	"testing/quick"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("hello, selected sum")
	wn, err := WriteFrame(&buf, MsgHello, payload)
	if err != nil {
		t.Fatal(err)
	}
	if wn != 5+len(payload) {
		t.Errorf("wrote %d bytes, want %d", wn, 5+len(payload))
	}
	f, rn, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rn != wn {
		t.Errorf("read %d bytes, wrote %d", rn, wn)
	}
	if f.Type != MsgHello || !bytes.Equal(f.Payload, payload) {
		t.Errorf("frame = %+v", f)
	}
}

func TestFrameRoundTripProperty(t *testing.T) {
	// The high bit of the type byte is the reserved CRC flag, so the valid
	// caller-facing type space is 7 bits; both framings must round-trip it.
	prop := func(t8 uint8, payload []byte, crc bool) bool {
		t8 &= 0x7F
		var buf bytes.Buffer
		var err error
		if crc {
			_, err = WriteFrameCRC(&buf, MsgType(t8), payload)
		} else {
			_, err = WriteFrame(&buf, MsgType(t8), payload)
		}
		if err != nil {
			return false
		}
		f, _, err := ReadFrame(&buf)
		if err != nil {
			return false
		}
		return f.Type == MsgType(t8) && bytes.Equal(f.Payload, payload) && f.CRC == crc
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestWriteFrameRejectsReservedTypeBit(t *testing.T) {
	if _, err := WriteFrame(io.Discard, MsgType(0x81), nil); !errors.Is(err, ErrBadMessage) {
		t.Errorf("plain: err = %v, want ErrBadMessage", err)
	}
	if _, err := WriteFrameCRC(io.Discard, MsgType(0x81), nil); !errors.Is(err, ErrBadMessage) {
		t.Errorf("crc: err = %v, want ErrBadMessage", err)
	}
}

func TestFrameEmptyPayload(t *testing.T) {
	var buf bytes.Buffer
	if _, err := WriteFrame(&buf, MsgDone, nil); err != nil {
		t.Fatal(err)
	}
	f, _, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != MsgDone || len(f.Payload) != 0 {
		t.Errorf("frame = %+v", f)
	}
}

func TestReadFrameRejectsOversizedDeclaration(t *testing.T) {
	// Hand-craft a header declaring MaxFrame+1 bytes.
	hdr := []byte{byte(MsgIndexChunk), 0xFF, 0xFF, 0xFF, 0xFF}
	_, _, err := ReadFrame(bytes.NewReader(hdr))
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
}

func TestReadFrameTruncated(t *testing.T) {
	var buf bytes.Buffer
	if _, err := WriteFrame(&buf, MsgSum, []byte("abcdef")); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	for cut := 1; cut < len(b); cut++ {
		if _, _, err := ReadFrame(bytes.NewReader(b[:cut])); err == nil {
			t.Fatalf("truncation at %d bytes should fail", cut)
		}
	}
}

func TestWriteFrameRejectsHugePayload(t *testing.T) {
	huge := make([]byte, MaxFrame+1)
	if _, err := WriteFrame(io.Discard, MsgIndexChunk, huge); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
}

func TestHelloRoundTrip(t *testing.T) {
	h := &Hello{
		Version:   Version,
		Scheme:    "paillier",
		PublicKey: []byte{1, 2, 3, 4, 5},
		VectorLen: 100000,
		ChunkLen:  100,
	}
	got, err := DecodeHello(h.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != h.Version || got.Scheme != h.Scheme ||
		!bytes.Equal(got.PublicKey, h.PublicKey) ||
		got.VectorLen != h.VectorLen || got.ChunkLen != h.ChunkLen {
		t.Errorf("got %+v, want %+v", got, h)
	}
}

func TestHelloRoundTripProperty(t *testing.T) {
	prop := func(scheme string, key []byte, n uint64, chunk uint32) bool {
		if len(scheme) > 255 {
			scheme = scheme[:255]
		}
		h := &Hello{Version: Version, Scheme: scheme, PublicKey: key, VectorLen: n, ChunkLen: chunk}
		got, err := DecodeHello(h.Encode())
		if err != nil {
			return false
		}
		return got.Scheme == scheme && bytes.Equal(got.PublicKey, key) &&
			got.VectorLen == n && got.ChunkLen == chunk
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeHelloRejectsCorruption(t *testing.T) {
	h := &Hello{Version: 1, Scheme: "paillier", PublicKey: []byte{9}, VectorLen: 5, ChunkLen: 1}
	good := h.Encode()
	cases := [][]byte{
		nil,
		good[:3],
		good[:len(good)-1],
		append(append([]byte{}, good...), 0xAA),
	}
	for i, b := range cases {
		if _, err := DecodeHello(b); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
	// Absurd scheme length.
	bad := append([]byte{}, good...)
	bad[4], bad[5], bad[6], bad[7] = 0xFF, 0xFF, 0xFF, 0xFF
	if _, err := DecodeHello(bad); err == nil {
		t.Error("giant scheme length should fail")
	}
}

func TestIndexChunkRoundTrip(t *testing.T) {
	width := 16
	body := make([]byte, 3*width)
	for i := range body {
		body[i] = byte(i)
	}
	c := &IndexChunk{Offset: 4242, Ciphertexts: body, Width: width}
	if c.Count() != 3 {
		t.Fatalf("Count = %d, want 3", c.Count())
	}
	got, err := DecodeIndexChunk(c.Encode(), width)
	if err != nil {
		t.Fatal(err)
	}
	if got.Offset != 4242 || got.Count() != 3 {
		t.Errorf("decoded %+v", got)
	}
	for i := 0; i < 3; i++ {
		if !bytes.Equal(got.At(i), body[i*width:(i+1)*width]) {
			t.Errorf("ciphertext %d corrupted", i)
		}
	}
}

func TestDecodeIndexChunkValidation(t *testing.T) {
	if _, err := DecodeIndexChunk([]byte{1, 2, 3}, 16); err == nil {
		t.Error("short chunk should fail")
	}
	if _, err := DecodeIndexChunk(make([]byte, 8+17), 16); err == nil {
		t.Error("ragged body should fail")
	}
	if _, err := DecodeIndexChunk(make([]byte, 24), 0); err == nil {
		t.Error("zero width should fail")
	}
	// Empty body is a legal (if useless) chunk.
	c, err := DecodeIndexChunk(make([]byte, 8), 16)
	if err != nil || c.Count() != 0 {
		t.Errorf("empty chunk: %v, count %d", err, c.Count())
	}
}

func TestMeterCounts(t *testing.T) {
	var m Meter
	m.AddOut(100)
	m.AddOut(50)
	m.AddIn(7)
	out, in, fo, fi := m.Snapshot()
	if out != 150 || in != 7 || fo != 2 || fi != 1 {
		t.Errorf("snapshot = (%d,%d,%d,%d)", out, in, fo, fi)
	}
	if m.TotalBytes() != 157 {
		t.Errorf("TotalBytes = %d", m.TotalBytes())
	}
	m.Reset()
	if m.TotalBytes() != 0 {
		t.Error("Reset did not zero counters")
	}
}

func TestConnOverPipe(t *testing.T) {
	a, b := net.Pipe()
	ca, cb := NewConn(a), NewConn(b)
	defer ca.Close()
	defer cb.Close()

	done := make(chan error, 1)
	go func() {
		f, err := cb.Recv()
		if err != nil {
			done <- err
			return
		}
		if f.Type != MsgHello {
			done <- errors.New("wrong type")
			return
		}
		done <- cb.Send(MsgSum, []byte("response"))
	}()

	if err := ca.Send(MsgHello, []byte("request")); err != nil {
		t.Fatal(err)
	}
	f, err := ca.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if string(f.Payload) != "response" {
		t.Errorf("payload = %q", f.Payload)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	out, in, _, _ := ca.Meter.Snapshot()
	if out != int64(5+len("request")) || in != int64(5+len("response")) {
		t.Errorf("meter = (%d, %d)", out, in)
	}
}

func TestConnSendError(t *testing.T) {
	a, b := net.Pipe()
	ca, cb := NewConn(a), NewConn(b)
	defer ca.Close()
	defer cb.Close()
	go func() { _ = ca.SendError("database on fire") }()
	f, err := cb.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != MsgError {
		t.Fatalf("type = %v", f.Type)
	}
	perr := DecodeError(f.Payload)
	if !strings.Contains(perr.Error(), "database on fire") {
		t.Errorf("err = %v", perr)
	}
}

func TestChunkWireSize(t *testing.T) {
	// Must agree byte-for-byte with what Send(MsgIndexChunk, Encode()) puts
	// on the wire.
	width := 32
	body := make([]byte, 5*width)
	c := &IndexChunk{Offset: 0, Ciphertexts: body, Width: width}
	var buf bytes.Buffer
	n, err := WriteFrame(&buf, MsgIndexChunk, c.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got := ChunkWireSize(5, width); got != n {
		t.Errorf("ChunkWireSize = %d, actual frame = %d", got, n)
	}
}

func TestHelloRowOffsetRoundTrip(t *testing.T) {
	h := &Hello{
		Version:   Version,
		Scheme:    "paillier",
		PublicKey: []byte{7, 8, 9},
		VectorLen: 2500,
		ChunkLen:  100,
		RowOffset: 5000,
	}
	got, err := DecodeHello(h.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.RowOffset != h.RowOffset || got.VectorLen != h.VectorLen {
		t.Errorf("got offset %d len %d, want %d %d", got.RowOffset, got.VectorLen, h.RowOffset, h.VectorLen)
	}
}

// A pre-cluster hello (12-byte trailer, no RowOffset field) must still
// decode, with the offset defaulting to zero.
func TestDecodeHelloLegacyTrailer(t *testing.T) {
	h := &Hello{Version: Version, Scheme: "paillier", PublicKey: []byte{1}, VectorLen: 42, ChunkLen: 7}
	legacy := h.Encode()
	legacy = legacy[:len(legacy)-8] // strip the RowOffset trailer
	got, err := DecodeHello(legacy)
	if err != nil {
		t.Fatal(err)
	}
	if got.RowOffset != 0 || got.VectorLen != 42 || got.ChunkLen != 7 {
		t.Errorf("legacy decode got %+v", got)
	}
}

// --- CRC frame trailer ---

func TestCRCFrameDetectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	if _, err := WriteFrameCRC(&buf, MsgSum, []byte("precious ciphertext")); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	// Flip each payload byte in turn: every corruption must be caught.
	for i := 5; i < len(b); i++ {
		mut := append([]byte{}, b...)
		mut[i] ^= 0x01
		if _, _, err := ReadFrame(bytes.NewReader(mut)); !errors.Is(err, ErrFrameCorrupt) {
			t.Fatalf("flipped byte %d: err = %v, want ErrFrameCorrupt", i, err)
		}
	}
	// A length-field flip changes the declared size; it must error some way
	// (truncation or CRC), never decode cleanly.
	mut := append([]byte{}, b...)
	mut[4] ^= 0x01
	if _, _, err := ReadFrame(bytes.NewReader(mut)); err == nil {
		t.Fatal("length corruption decoded cleanly")
	}
}

func TestReadFrameLimitCeiling(t *testing.T) {
	var buf bytes.Buffer
	if _, err := WriteFrame(&buf, MsgSum, make([]byte, 512)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadFrameLimit(bytes.NewReader(buf.Bytes()), 128); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge under lowered ceiling", err)
	}
	if _, _, err := ReadFrameLimit(bytes.NewReader(buf.Bytes()), 512); err != nil {
		t.Fatalf("exact ceiling should pass: %v", err)
	}
}

// Mixed-version interop: a new (CRC-capable) peer talking to an old one.
// Old peers never set HelloFlagFrameCRC and never send CRC trailers; a new
// receiver must accept their plain frames, and a new sender must not send
// CRC frames unless the flag was negotiated.
func TestMixedVersionCRCInterop(t *testing.T) {
	// Old sender -> new receiver: plain frames pass through, CRC=false.
	var plain bytes.Buffer
	if _, err := WriteFrame(&plain, MsgSum, []byte("old peer")); err != nil {
		t.Fatal(err)
	}
	f, _, err := ReadFrame(&plain)
	if err != nil || f.CRC {
		t.Fatalf("plain frame through new reader: %+v, %v", f, err)
	}

	// A hello without the flag encodes WITHOUT the flags trailer, so an
	// old DecodeHello (which rejects unknown trailer lengths) still parses
	// it. The flagged form uses the extended trailer.
	h := &Hello{Version: Version, Scheme: "paillier", PublicKey: []byte{1}, VectorLen: 10, ChunkLen: 5}
	unflagged := h.Encode()
	h2 := *h
	h2.Flags = HelloFlagFrameCRC
	flagged := h2.Encode()
	if len(flagged) != len(unflagged)+4 {
		t.Fatalf("flagged hello is %d bytes, unflagged %d; want +4", len(flagged), len(unflagged))
	}
	got, err := DecodeHello(unflagged)
	if err != nil || got.Flags != 0 {
		t.Fatalf("unflagged decode: %+v, %v", got, err)
	}
	got, err = DecodeHello(flagged)
	if err != nil || got.Flags != HelloFlagFrameCRC {
		t.Fatalf("flagged decode: %+v, %v", got, err)
	}

	// New Conn without EnableCRC behaves exactly like an old peer on the
	// wire: no flag bit on the type byte.
	a, b := net.Pipe()
	ca, cb := NewConn(a), NewConn(b)
	defer ca.Close()
	defer cb.Close()
	go func() { _ = ca.Send(MsgDone, nil) }()
	fr, err := cb.Recv()
	if err != nil || fr.CRC {
		t.Fatalf("un-negotiated conn sent CRC frame: %+v, %v", fr, err)
	}
	// After EnableCRC the same conn's frames carry (and verify) trailers.
	ca.EnableCRC()
	go func() { _ = ca.Send(MsgDone, nil) }()
	fr, err = cb.Recv()
	if err != nil || !fr.CRC {
		t.Fatalf("negotiated conn frame: %+v, %v", fr, err)
	}
}

// --- classified error codes ---

func TestErrorCodeRoundTrip(t *testing.T) {
	for _, code := range []ErrorCode{CodeBusy, CodeTimeout, CodeCorruptFrame, CodeShardUnavailable, CodeProtocol} {
		payload := EncodeErrorCode(code, "details here")
		err := DecodeError(payload)
		if got := ErrorCodeOf(err); got != code {
			t.Errorf("code %q round-tripped to %q (err: %v)", code, got, err)
		}
		if !strings.Contains(err.Error(), "details here") {
			t.Errorf("message lost: %v", err)
		}
	}
	// Uncoded payloads stay uncoded.
	if got := ErrorCodeOf(DecodeError([]byte("free text"))); got != CodeNone {
		t.Errorf("free text got code %q", got)
	}
	// Bracketed prose is not mistaken for a code.
	if got := ErrorCodeOf(DecodeError([]byte("[some Long Prose] x"))); got != CodeNone {
		t.Errorf("prose got code %q", got)
	}
}

func TestDecodeErrorBoundsAndSanitizes(t *testing.T) {
	// Oversized payloads are truncated.
	huge := bytes.Repeat([]byte("A"), 10*MaxErrorPayload)
	err := DecodeError(huge)
	if len(err.Error()) > MaxErrorPayload+64 {
		t.Errorf("err is %d bytes", len(err.Error()))
	}
	// Control bytes, newlines, and ANSI escapes are stripped.
	evil := []byte("bad\x1b[31mred\x1b[0m\nnewline\x00null")
	msg := DecodeError(evil).Error()
	for i := 0; i < len(msg); i++ {
		if msg[i] < 0x20 || msg[i] > 0x7E {
			t.Fatalf("non-printable %#x survived at %d in %q", msg[i], i, msg)
		}
	}
	if !strings.Contains(msg, "bad") || !strings.Contains(msg, "red") {
		t.Errorf("legitimate text lost: %q", msg)
	}
}

func TestEncodeErrorCodeTruncates(t *testing.T) {
	msg := strings.Repeat("x", 5000)
	b := EncodeErrorCode(CodeBusy, msg)
	if len(b) > MaxErrorPayload {
		t.Fatalf("payload is %d bytes", len(b))
	}
	if got := ErrorCodeOf(DecodeError(b)); got != CodeBusy {
		t.Errorf("truncation destroyed the code: %q", got)
	}
}

func TestErrorCodeFor(t *testing.T) {
	if got := ErrorCodeFor(ErrFrameCorrupt); got != CodeCorruptFrame {
		t.Errorf("corrupt: %q", got)
	}
	if got := ErrorCodeFor(errors.New("misc")); got != CodeNone {
		t.Errorf("misc: %q", got)
	}
	inner := &PeerError{Code: CodeBusy, Msg: "b"}
	if got := ErrorCodeFor(fmt.Errorf("wrapped: %w", inner)); got != CodeBusy {
		t.Errorf("relayed: %q", got)
	}
}

func TestHelloFlagsRoundTrip(t *testing.T) {
	h := &Hello{Version: Version, Scheme: "s", PublicKey: []byte{1}, VectorLen: 1, ChunkLen: 1, RowOffset: 9, Flags: HelloFlagFrameCRC}
	got, err := DecodeHello(h.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Flags != HelloFlagFrameCRC || got.RowOffset != 9 {
		t.Errorf("got %+v", got)
	}
}
