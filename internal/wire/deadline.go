package wire

import (
	"errors"
	"net"
	"sync"
	"time"
)

// Deadliner is the subset of net.Conn deadline control the server runtime
// plumbs through a Conn. net.TCPConn and net.Pipe both implement it; a
// netsim.Throttle does not, so when the transport is wrapped the owner of
// the raw connection installs it explicitly via SetDeadliner.
type Deadliner interface {
	SetReadDeadline(t time.Time) error
	SetWriteDeadline(t time.Time) error
}

// deadlines holds a Conn's optional timeout policy. Split from Conn's hot
// fields so the zero configuration costs one nil check per Send/Recv.
type deadlines struct {
	mu    sync.Mutex
	dl    Deadliner
	idle  time.Duration // per-Recv read deadline extension; 0 = none
	write time.Duration // per-Send write deadline extension; 0 = none
}

// SetDeadliner installs (or replaces) the deadline controller. NewConn
// auto-detects transports that already implement Deadliner; this override
// exists for wrapped transports — e.g. a throttled connection where the
// deadlines must be set on the raw net.Conn underneath the throttle.
func (c *Conn) SetDeadliner(d Deadliner) {
	c.dls.mu.Lock()
	c.dls.dl = d
	c.dls.mu.Unlock()
}

// SetIdleTimeout arms a rolling read deadline: every Recv must observe a
// frame within d of being issued or it fails with a timeout error
// (detectable via IsTimeout). Zero disables. No-op while no Deadliner is
// installed.
func (c *Conn) SetIdleTimeout(d time.Duration) {
	c.dls.mu.Lock()
	c.dls.idle = d
	c.dls.mu.Unlock()
}

// SetWriteTimeout arms a rolling write deadline: every Send must complete
// within d. Zero disables. No-op while no Deadliner is installed.
func (c *Conn) SetWriteTimeout(d time.Duration) {
	c.dls.mu.Lock()
	c.dls.write = d
	c.dls.mu.Unlock()
}

// beforeRecv applies the idle timeout, if armed, ahead of a frame read.
func (c *Conn) beforeRecv() {
	c.dls.mu.Lock()
	dl, idle := c.dls.dl, c.dls.idle
	c.dls.mu.Unlock()
	if dl != nil && idle > 0 {
		_ = dl.SetReadDeadline(time.Now().Add(idle))
	}
}

// beforeSend applies the write timeout, if armed, ahead of a frame write.
func (c *Conn) beforeSend() {
	c.dls.mu.Lock()
	dl, wr := c.dls.dl, c.dls.write
	c.dls.mu.Unlock()
	if dl != nil && wr > 0 {
		_ = dl.SetWriteDeadline(time.Now().Add(wr))
	}
}

// IsTimeout reports whether err (possibly wrapped) is a network timeout —
// an expired read or write deadline. The server runtime uses it to tell an
// idle client apart from a protocol failure.
func IsTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}
