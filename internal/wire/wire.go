// Package wire defines the message framing and codecs used between the
// selected-sum client and server.
//
// Framing is deliberately simple: every frame is
//
//	1 byte  message type
//	4 bytes big-endian payload length
//	payload
//
// All multi-byte integers are big-endian. Ciphertext vectors are encoded as
// contiguous fixed-width values (the width is pinned by the public key that
// accompanies the session), so a chunk of k ciphertexts costs exactly
// 5 + 8 + k·width bytes on the wire — which makes the communication
// accounting in the benchmarks exact rather than estimated.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// MsgType identifies a frame's payload.
type MsgType byte

// Protocol message types.
const (
	// MsgHello opens a session: client sends protocol parameters and its
	// public key.
	MsgHello MsgType = 0x01
	// MsgIndexChunk carries a contiguous run of encrypted index-vector
	// entries.
	MsgIndexChunk MsgType = 0x02
	// MsgSum carries the server's single encrypted (possibly blinded) sum.
	MsgSum MsgType = 0x03
	// MsgError carries a human-readable failure reason; either side may
	// send it before closing.
	MsgError MsgType = 0x04
	// MsgDone signals the client has sent its entire index vector.
	MsgDone MsgType = 0x05
)

// MaxFrame bounds a frame payload. A 100,000-element chunk of 1024-bit-
// modulus ciphertexts is ~25.6 MB; 64 MB leaves generous headroom while
// still rejecting absurd lengths from a corrupt or hostile peer before
// allocation.
const MaxFrame = 64 << 20

// Protocol version for MsgHello.
const Version = 1

var (
	// ErrFrameTooLarge is returned when a declared payload exceeds MaxFrame.
	ErrFrameTooLarge = errors.New("wire: frame exceeds maximum size")
	// ErrBadMessage is returned when a payload does not parse.
	ErrBadMessage = errors.New("wire: malformed message")
)

// Frame is one decoded wire frame.
type Frame struct {
	Type    MsgType
	Payload []byte
}

// WriteFrame writes one frame to w and returns the number of bytes written.
func WriteFrame(w io.Writer, t MsgType, payload []byte) (int, error) {
	if len(payload) > MaxFrame {
		return 0, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, len(payload))
	}
	var hdr [5]byte
	hdr[0] = byte(t)
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return 0, fmt.Errorf("wire: writing frame header: %w", err)
	}
	// Skip zero-length writes: net.Pipe synchronizes even empty Writes
	// with a Read, so writing an empty payload would deadlock against a
	// peer that (correctly) never issues a zero-byte read.
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return len(hdr), fmt.Errorf("wire: writing frame payload: %w", err)
		}
	}
	return len(hdr) + len(payload), nil
}

// ReadFrame reads one frame from r. It validates the declared length before
// allocating.
func ReadFrame(r io.Reader) (Frame, int, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Frame{}, 0, fmt.Errorf("wire: reading frame header: %w", err)
	}
	n := binary.BigEndian.Uint32(hdr[1:])
	if n > MaxFrame {
		return Frame{}, len(hdr), fmt.Errorf("%w: declared %d bytes", ErrFrameTooLarge, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return Frame{}, len(hdr), fmt.Errorf("wire: reading frame payload: %w", err)
	}
	return Frame{Type: MsgType(hdr[0]), Payload: payload}, len(hdr) + int(n), nil
}

// Hello is the session-opening message.
type Hello struct {
	Version uint32
	// Scheme names the homomorphic cryptosystem ("paillier", ...).
	Scheme string
	// PublicKey is the scheme-specific key encoding.
	PublicKey []byte
	// VectorLen is the total index-vector length n the client will send.
	VectorLen uint64
	// ChunkLen is the number of ciphertexts per MsgIndexChunk (0 means a
	// single chunk carrying the whole vector).
	ChunkLen uint32
	// RowOffset scopes the session to rows [RowOffset, RowOffset+VectorLen)
	// of a larger logical database: index-chunk offsets stay in the global
	// coordinate system and the server translates them by RowOffset. The
	// cluster aggregator uses this to fan one logical query out to sharded
	// backends without rewriting chunk framing. Zero (the single-server
	// default) leaves offsets untranslated.
	RowOffset uint64
}

// Encode serializes h.
func (h *Hello) Encode() []byte {
	b := make([]byte, 0, 4+4+len(h.Scheme)+4+len(h.PublicKey)+8+4+8)
	b = binary.BigEndian.AppendUint32(b, h.Version)
	b = binary.BigEndian.AppendUint32(b, uint32(len(h.Scheme)))
	b = append(b, h.Scheme...)
	b = binary.BigEndian.AppendUint32(b, uint32(len(h.PublicKey)))
	b = append(b, h.PublicKey...)
	b = binary.BigEndian.AppendUint64(b, h.VectorLen)
	b = binary.BigEndian.AppendUint32(b, h.ChunkLen)
	b = binary.BigEndian.AppendUint64(b, h.RowOffset)
	return b
}

// DecodeHello parses a Hello payload.
func DecodeHello(b []byte) (*Hello, error) {
	var h Hello
	if len(b) < 8 {
		return nil, fmt.Errorf("%w: hello too short", ErrBadMessage)
	}
	h.Version = binary.BigEndian.Uint32(b)
	b = b[4:]
	schemeLen := binary.BigEndian.Uint32(b)
	b = b[4:]
	if schemeLen > 255 || uint32(len(b)) < schemeLen {
		return nil, fmt.Errorf("%w: bad scheme length %d", ErrBadMessage, schemeLen)
	}
	h.Scheme = string(b[:schemeLen])
	b = b[schemeLen:]
	if len(b) < 4 {
		return nil, fmt.Errorf("%w: hello truncated before key", ErrBadMessage)
	}
	keyLen := binary.BigEndian.Uint32(b)
	b = b[4:]
	if uint32(len(b)) < keyLen {
		return nil, fmt.Errorf("%w: hello truncated key", ErrBadMessage)
	}
	h.PublicKey = append([]byte(nil), b[:keyLen]...)
	b = b[keyLen:]
	// Two accepted trailers: the original 12-byte form (vector length +
	// chunk length) and the 20-byte shard-scoped form that appends
	// RowOffset. Accepting both keeps pre-cluster clients interoperable —
	// a missing row offset means "rows start at zero".
	if len(b) != 12 && len(b) != 20 {
		return nil, fmt.Errorf("%w: hello has %d trailing bytes, want 12 or 20", ErrBadMessage, len(b))
	}
	h.VectorLen = binary.BigEndian.Uint64(b)
	h.ChunkLen = binary.BigEndian.Uint32(b[8:])
	if len(b) == 20 {
		h.RowOffset = binary.BigEndian.Uint64(b[12:])
	}
	return &h, nil
}

// IndexChunk carries ciphertexts for vector positions [Offset, Offset+Count).
type IndexChunk struct {
	Offset uint64
	// Ciphertexts is Count fixed-width encodings back to back; Width is the
	// per-ciphertext byte width (from the session's public key).
	Ciphertexts []byte
	Width       int
}

// Count returns the number of ciphertexts in the chunk.
func (c *IndexChunk) Count() int {
	if c.Width <= 0 {
		return 0
	}
	return len(c.Ciphertexts) / c.Width
}

// At returns the encoding of the i'th ciphertext in the chunk.
func (c *IndexChunk) At(i int) []byte {
	return c.Ciphertexts[i*c.Width : (i+1)*c.Width]
}

// Encode serializes the chunk.
func (c *IndexChunk) Encode() []byte {
	b := make([]byte, 0, 8+len(c.Ciphertexts))
	b = binary.BigEndian.AppendUint64(b, c.Offset)
	return append(b, c.Ciphertexts...)
}

// DecodeIndexChunk parses an IndexChunk payload; width is the session's
// ciphertext width and must evenly divide the ciphertext bytes.
func DecodeIndexChunk(b []byte, width int) (*IndexChunk, error) {
	if width <= 0 {
		return nil, fmt.Errorf("%w: non-positive ciphertext width", ErrBadMessage)
	}
	if len(b) < 8 {
		return nil, fmt.Errorf("%w: chunk too short", ErrBadMessage)
	}
	body := b[8:]
	if len(body)%width != 0 {
		return nil, fmt.Errorf("%w: chunk body %d bytes not a multiple of width %d", ErrBadMessage, len(body), width)
	}
	return &IndexChunk{
		Offset:      binary.BigEndian.Uint64(b),
		Ciphertexts: body,
		Width:       width,
	}, nil
}

// EncodeError and DecodeError wrap MsgError payloads.
func EncodeError(msg string) []byte { return []byte(msg) }

// DecodeError returns the error carried by a MsgError payload.
func DecodeError(b []byte) error { return fmt.Errorf("wire: peer error: %s", b) }
