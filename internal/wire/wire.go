// Package wire defines the message framing and codecs used between the
// selected-sum client and server.
//
// Framing is deliberately simple: every frame is
//
//	1 byte  message type
//	4 bytes big-endian payload length
//	payload
//
// All multi-byte integers are big-endian. Ciphertext vectors are encoded as
// contiguous fixed-width values (the width is pinned by the public key that
// accompanies the session), so a chunk of k ciphertexts costs exactly
// 5 + 8 + k·width bytes on the wire — which makes the communication
// accounting in the benchmarks exact rather than estimated.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"strings"
)

// MsgType identifies a frame's payload.
type MsgType byte

// Protocol message types.
const (
	// MsgHello opens a session: client sends protocol parameters and its
	// public key.
	MsgHello MsgType = 0x01
	// MsgIndexChunk carries a contiguous run of encrypted index-vector
	// entries.
	MsgIndexChunk MsgType = 0x02
	// MsgSum carries the server's single encrypted (possibly blinded) sum.
	MsgSum MsgType = 0x03
	// MsgError carries a human-readable failure reason; either side may
	// send it before closing.
	MsgError MsgType = 0x04
	// MsgDone signals the client has sent its entire index vector.
	MsgDone MsgType = 0x05
)

// Stock-service message types (internal/stock). They live in a distinct
// range so a stock frame can never be mistaken for a selected-sum frame, and
// the 0x80 bit stays reserved for the CRC flag. Payload codecs live in
// internal/stock; the framing, CRC trailers, and MsgError conventions are
// shared with the selected-sum protocol.
const (
	// MsgStockHello opens a stock session: the client sends its public key
	// (and its fingerprint, which the daemon verifies) so the daemon can
	// select — or create — the matching inventory. The daemon echoes a
	// MsgStockHello ack carrying the fingerprint it admitted.
	MsgStockHello MsgType = 0x10
	// MsgStockRequest asks for up to Count items of one stock kind.
	MsgStockRequest MsgType = 0x11
	// MsgStockBatch carries the daemon's reply: as many fixed-width items as
	// it had on hand, possibly zero — the daemon never blocks a client
	// waiting for generation.
	MsgStockBatch MsgType = 0x12
)

// MaxFrame bounds a frame payload. A 100,000-element chunk of 1024-bit-
// modulus ciphertexts is ~25.6 MB; 64 MB leaves generous headroom while
// still rejecting absurd lengths from a corrupt or hostile peer before
// allocation.
const MaxFrame = 64 << 20

// frameFlagCRC, set on the wire type byte, marks a frame that carries a
// 4-byte big-endian CRC32 (IEEE) trailer computed over the header and
// payload. Receivers handle flagged frames statelessly — negotiation (the
// HelloFlagFrameCRC hello flag) only governs which frames a sender flags,
// so a CRC session still parses the plain frames a pre-negotiation path
// (e.g. the server's busy rejection) may emit.
const frameFlagCRC = 0x80

// crcTrailerSize is the length of the CRC32 frame trailer.
const crcTrailerSize = 4

// Protocol version for MsgHello.
const Version = 1

var (
	// ErrFrameTooLarge is returned when a declared payload exceeds MaxFrame.
	ErrFrameTooLarge = errors.New("wire: frame exceeds maximum size")
	// ErrBadMessage is returned when a payload does not parse.
	ErrBadMessage = errors.New("wire: malformed message")
	// ErrFrameCorrupt is returned when a CRC-trailed frame fails its
	// checksum: the bytes were damaged in flight. Unlike ErrBadMessage it
	// is a transport fault, so the cluster client treats it as retryable.
	ErrFrameCorrupt = errors.New("wire: frame corrupt (CRC mismatch)")
)

// Frame is one decoded wire frame.
type Frame struct {
	Type    MsgType
	Payload []byte
	// CRC reports whether the frame carried (and passed) a CRC32 trailer.
	CRC bool
}

// WriteFrame writes one frame to w and returns the number of bytes written.
func WriteFrame(w io.Writer, t MsgType, payload []byte) (int, error) {
	if byte(t)&frameFlagCRC != 0 {
		return 0, fmt.Errorf("%w: type %#x uses the reserved CRC flag bit", ErrBadMessage, byte(t))
	}
	if len(payload) > MaxFrame {
		return 0, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, len(payload))
	}
	var hdr [5]byte
	hdr[0] = byte(t)
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return 0, fmt.Errorf("wire: writing frame header: %w", err)
	}
	// Skip zero-length writes: net.Pipe synchronizes even empty Writes
	// with a Read, so writing an empty payload would deadlock against a
	// peer that (correctly) never issues a zero-byte read.
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return len(hdr), fmt.Errorf("wire: writing frame payload: %w", err)
		}
	}
	return len(hdr) + len(payload), nil
}

// WriteFrameCRC writes one frame with a CRC32 trailer (the frameFlagCRC
// bit set on the type byte, a 4-byte checksum over header and payload
// appended). It returns the number of bytes written.
func WriteFrameCRC(w io.Writer, t MsgType, payload []byte) (int, error) {
	if byte(t)&frameFlagCRC != 0 {
		return 0, fmt.Errorf("%w: type %#x uses the reserved CRC flag bit", ErrBadMessage, byte(t))
	}
	if len(payload) > MaxFrame {
		return 0, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, len(payload))
	}
	var hdr [5]byte
	hdr[0] = byte(t) | frameFlagCRC
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(payload)))
	sum := crc32.ChecksumIEEE(hdr[:])
	sum = crc32.Update(sum, crc32.IEEETable, payload)
	var trailer [crcTrailerSize]byte
	binary.BigEndian.PutUint32(trailer[:], sum)
	if _, err := w.Write(hdr[:]); err != nil {
		return 0, fmt.Errorf("wire: writing frame header: %w", err)
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return len(hdr), fmt.Errorf("wire: writing frame payload: %w", err)
		}
	}
	if _, err := w.Write(trailer[:]); err != nil {
		return len(hdr) + len(payload), fmt.Errorf("wire: writing frame trailer: %w", err)
	}
	return len(hdr) + len(payload) + crcTrailerSize, nil
}

// ReadFrame reads one frame from r. It validates the declared length before
// allocating, and verifies the CRC32 trailer when the frame carries one.
func ReadFrame(r io.Reader) (Frame, int, error) {
	return ReadFrameLimit(r, MaxFrame)
}

// ReadFrameLimit is ReadFrame with a caller-chosen payload ceiling (capped
// at MaxFrame). Peers that know the largest frame they can legitimately
// receive — a client expecting one sum ciphertext, an aggregator expecting
// one partial — use it to reject a hostile or corrupt declared length far
// below the global bound, before allocating.
func ReadFrameLimit(r io.Reader, limit int) (Frame, int, error) {
	if limit <= 0 || limit > MaxFrame {
		limit = MaxFrame
	}
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Frame{}, 0, fmt.Errorf("wire: reading frame header: %w", err)
	}
	n := binary.BigEndian.Uint32(hdr[1:])
	if n > uint32(limit) {
		return Frame{}, len(hdr), fmt.Errorf("%w: declared %d bytes (limit %d)", ErrFrameTooLarge, n, limit)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return Frame{}, len(hdr), fmt.Errorf("wire: reading frame payload: %w", err)
	}
	read := len(hdr) + int(n)
	t := hdr[0]
	if t&frameFlagCRC == 0 {
		return Frame{Type: MsgType(t), Payload: payload}, read, nil
	}
	var trailer [crcTrailerSize]byte
	if _, err := io.ReadFull(r, trailer[:]); err != nil {
		return Frame{}, read, fmt.Errorf("wire: reading frame trailer: %w", err)
	}
	read += crcTrailerSize
	sum := crc32.ChecksumIEEE(hdr[:])
	sum = crc32.Update(sum, crc32.IEEETable, payload)
	if got := binary.BigEndian.Uint32(trailer[:]); got != sum {
		return Frame{}, read, fmt.Errorf("%w: trailer %08x, computed %08x", ErrFrameCorrupt, got, sum)
	}
	return Frame{Type: MsgType(t &^ frameFlagCRC), Payload: payload, CRC: true}, read, nil
}

// Hello option flags (Hello.Flags bits).
const (
	// HelloFlagFrameCRC asks the peer to append CRC32 trailers to the
	// frames it sends for the rest of the session; the sender of the flag
	// commits to doing the same (its hello is already CRC-framed).
	// Corruption is then detected at the frame layer instead of surfacing
	// as a garbage bignum or a misparsed message.
	HelloFlagFrameCRC uint32 = 1 << 0
)

// ColumnSet selects which server-side derived columns a session folds the
// encrypted index vector against. It is a bitmask so one uplink can feed
// several folds — the paper's variance trick ("one uplink and two response
// ciphertexts") generalized to the wire: the server replies with one MsgSum
// per set bit, in ascending bit order.
type ColumnSet uint32

// Column bits. The zero value means "value column only", which keeps the
// hello parseable by (and equivalent for) pre-columns peers.
const (
	// ColValue folds against the raw value column x_i.
	ColValue ColumnSet = 1 << 0
	// ColSquare folds against the derived square column x_i².
	ColSquare ColumnSet = 1 << 1
	// ColOnes folds against the constant-1 column, yielding the selected
	// count m without revealing the selection.
	ColOnes ColumnSet = 1 << 2

	// colAll is the union of every known bit.
	colAll = ColValue | ColSquare | ColOnes
)

// Valid reports whether the set names only known columns (the empty set is
// valid: it means the default value-only session).
func (c ColumnSet) Valid() bool { return c&^colAll == 0 }

// Has reports whether bit col is set.
func (c ColumnSet) Has(col ColumnSet) bool { return c&col != 0 }

// Count returns the number of selected columns — the number of MsgSum
// frames a server replies with. The empty set counts as one (value only).
func (c ColumnSet) Count() int {
	if c == 0 {
		return 1
	}
	n := 0
	for b := c; b != 0; b &= b - 1 {
		n++
	}
	return n
}

// String names the set for logs and errors, e.g. "value|square".
func (c ColumnSet) String() string {
	if c == 0 {
		return "value"
	}
	var parts []string
	if c.Has(ColValue) {
		parts = append(parts, "value")
	}
	if c.Has(ColSquare) {
		parts = append(parts, "square")
	}
	if c.Has(ColOnes) {
		parts = append(parts, "ones")
	}
	if rest := c &^ colAll; rest != 0 {
		parts = append(parts, fmt.Sprintf("unknown(%#x)", uint32(rest)))
	}
	return strings.Join(parts, "|")
}

// Hello is the session-opening message.
type Hello struct {
	Version uint32
	// Scheme names the homomorphic cryptosystem ("paillier", ...).
	Scheme string
	// PublicKey is the scheme-specific key encoding.
	PublicKey []byte
	// VectorLen is the total index-vector length n the client will send.
	VectorLen uint64
	// ChunkLen is the number of ciphertexts per MsgIndexChunk (0 means a
	// single chunk carrying the whole vector).
	ChunkLen uint32
	// RowOffset scopes the session to rows [RowOffset, RowOffset+VectorLen)
	// of a larger logical database: index-chunk offsets stay in the global
	// coordinate system and the server translates them by RowOffset. The
	// cluster aggregator uses this to fan one logical query out to sharded
	// backends without rewriting chunk framing. Zero (the single-server
	// default) leaves offsets untranslated.
	RowOffset uint64
	// Flags carries session option bits (HelloFlag*). Unknown bits are
	// ignored by the receiver, so new options stay backward compatible.
	Flags uint32
	// TraceID, when non-zero, is the 16-byte request identifier the client
	// minted for end-to-end tracing (internal/trace): every component the
	// query touches records its per-phase costs under this ID, and the
	// aggregator forwards it to each backend shard so one ID stitches the
	// whole fan-out together. The all-zero value means "no trace" and is
	// not sent on the wire, keeping the hello parseable by pre-trace peers.
	TraceID [16]byte
	// Columns selects which derived columns the session folds against
	// (Col* bits); the server replies with one MsgSum per column in
	// ascending bit order. Zero means "value column only" and is not sent
	// on the wire, keeping the hello parseable by pre-columns peers.
	Columns ColumnSet
}

// HasTraceID reports whether the hello carries a (non-zero) trace ID.
func (h *Hello) HasTraceID() bool { return h.TraceID != [16]byte{} }

// EffectiveColumns normalizes the column set: the wire's zero value means a
// plain value-column session.
func (h *Hello) EffectiveColumns() ColumnSet {
	if h.Columns == 0 {
		return ColValue
	}
	return h.Columns
}

// Encode serializes h. The trailer is emitted in its shortest accepted
// form — flags are appended only when set — so a flagless hello stays
// parseable by pre-flags peers.
func (h *Hello) Encode() []byte {
	b := make([]byte, 0, 4+4+len(h.Scheme)+4+len(h.PublicKey)+8+4+8+4+16+4)
	b = binary.BigEndian.AppendUint32(b, h.Version)
	b = binary.BigEndian.AppendUint32(b, uint32(len(h.Scheme)))
	b = append(b, h.Scheme...)
	b = binary.BigEndian.AppendUint32(b, uint32(len(h.PublicKey)))
	b = append(b, h.PublicKey...)
	b = binary.BigEndian.AppendUint64(b, h.VectorLen)
	b = binary.BigEndian.AppendUint32(b, h.ChunkLen)
	b = binary.BigEndian.AppendUint64(b, h.RowOffset)
	if h.Flags != 0 || h.HasTraceID() || h.Columns != 0 {
		// A trace ID or column set forces the flags word out too (even when
		// zero): the trailer forms are distinguished by length alone.
		b = binary.BigEndian.AppendUint32(b, h.Flags)
	}
	if h.HasTraceID() || h.Columns != 0 {
		b = append(b, h.TraceID[:]...)
	}
	if h.Columns != 0 {
		b = binary.BigEndian.AppendUint32(b, uint32(h.Columns))
	}
	return b
}

// DecodeHello parses a Hello payload.
func DecodeHello(b []byte) (*Hello, error) {
	var h Hello
	if len(b) < 8 {
		return nil, fmt.Errorf("%w: hello too short", ErrBadMessage)
	}
	h.Version = binary.BigEndian.Uint32(b)
	b = b[4:]
	schemeLen := binary.BigEndian.Uint32(b)
	b = b[4:]
	if schemeLen > 255 || uint32(len(b)) < schemeLen {
		return nil, fmt.Errorf("%w: bad scheme length %d", ErrBadMessage, schemeLen)
	}
	h.Scheme = string(b[:schemeLen])
	b = b[schemeLen:]
	if len(b) < 4 {
		return nil, fmt.Errorf("%w: hello truncated before key", ErrBadMessage)
	}
	keyLen := binary.BigEndian.Uint32(b)
	b = b[4:]
	if uint32(len(b)) < keyLen {
		return nil, fmt.Errorf("%w: hello truncated key", ErrBadMessage)
	}
	h.PublicKey = append([]byte(nil), b[:keyLen]...)
	b = b[keyLen:]
	// Five accepted trailers: the original 12-byte form (vector length +
	// chunk length), the 20-byte shard-scoped form that appends RowOffset,
	// the 24-byte form that appends session Flags, the 40-byte form that
	// appends a 16-byte trace ID, and the 44-byte form that appends a
	// column-set word. Accepting all keeps earlier clients interoperable —
	// a missing row offset means "rows start at zero", missing flags mean
	// "no options", a missing trace ID means "no trace", a missing column
	// set means "value column only".
	switch len(b) {
	case 12, 20, 24, 40, 44:
	default:
		return nil, fmt.Errorf("%w: hello has %d trailing bytes, want 12, 20, 24, 40, or 44", ErrBadMessage, len(b))
	}
	h.VectorLen = binary.BigEndian.Uint64(b)
	h.ChunkLen = binary.BigEndian.Uint32(b[8:])
	if len(b) >= 20 {
		h.RowOffset = binary.BigEndian.Uint64(b[12:])
	}
	if len(b) >= 24 {
		h.Flags = binary.BigEndian.Uint32(b[20:])
	}
	if len(b) >= 40 {
		copy(h.TraceID[:], b[24:])
	}
	if len(b) == 44 {
		h.Columns = ColumnSet(binary.BigEndian.Uint32(b[40:]))
	}
	return &h, nil
}

// IndexChunk carries ciphertexts for vector positions [Offset, Offset+Count).
type IndexChunk struct {
	Offset uint64
	// Ciphertexts is Count fixed-width encodings back to back; Width is the
	// per-ciphertext byte width (from the session's public key).
	Ciphertexts []byte
	Width       int
}

// Count returns the number of ciphertexts in the chunk.
func (c *IndexChunk) Count() int {
	if c.Width <= 0 {
		return 0
	}
	return len(c.Ciphertexts) / c.Width
}

// At returns the encoding of the i'th ciphertext in the chunk.
func (c *IndexChunk) At(i int) []byte {
	return c.Ciphertexts[i*c.Width : (i+1)*c.Width]
}

// Encode serializes the chunk.
func (c *IndexChunk) Encode() []byte {
	b := make([]byte, 0, 8+len(c.Ciphertexts))
	b = binary.BigEndian.AppendUint64(b, c.Offset)
	return append(b, c.Ciphertexts...)
}

// DecodeIndexChunk parses an IndexChunk payload; width is the session's
// ciphertext width and must evenly divide the ciphertext bytes.
func DecodeIndexChunk(b []byte, width int) (*IndexChunk, error) {
	if width <= 0 {
		return nil, fmt.Errorf("%w: non-positive ciphertext width", ErrBadMessage)
	}
	if len(b) < 8 {
		return nil, fmt.Errorf("%w: chunk too short", ErrBadMessage)
	}
	body := b[8:]
	if len(body)%width != 0 {
		return nil, fmt.Errorf("%w: chunk body %d bytes not a multiple of width %d", ErrBadMessage, len(body), width)
	}
	return &IndexChunk{
		Offset:      binary.BigEndian.Uint64(b),
		Ciphertexts: body,
		Width:       width,
	}, nil
}

// MaxErrorPayload bounds a MsgError payload in both directions: encoders
// truncate before sending, and DecodeError truncates before logging, so a
// malicious peer cannot blow up client logs or memory with a multi-megabyte
// "error message".
const MaxErrorPayload = 1024

// ErrorCode classifies a MsgError so the receiving side can react without
// parsing prose: retry on transient faults, fail fast on protocol
// rejections. Codes travel as a "[code] " payload prefix, which stays
// readable to peers that treat the payload as free text.
type ErrorCode string

// Known error codes.
const (
	// CodeNone marks an uncoded (legacy free-text) error.
	CodeNone ErrorCode = ""
	// CodeBusy is the server's admission-control rejection: load shedding,
	// worth retrying elsewhere or later.
	CodeBusy ErrorCode = "busy"
	// CodeTimeout reports the peer gave up waiting (idle/session deadline).
	CodeTimeout ErrorCode = "timeout"
	// CodeCorruptFrame reports the peer received a frame that failed its
	// CRC check — a transport fault, retryable on a fresh connection.
	CodeCorruptFrame ErrorCode = "corrupt-frame"
	// CodeShardUnavailable is the aggregator's classified partial-failure
	// report: a shard exhausted every candidate backend, so the whole query
	// failed (never a partial sum). Transient cluster state, retryable.
	CodeShardUnavailable ErrorCode = "shard-unavailable"
	// CodeProtocol marks a deterministic protocol rejection (bad lengths,
	// unknown scheme, malformed message); retrying cannot help.
	CodeProtocol ErrorCode = "protocol"
)

// PeerError is the decoded form of a MsgError payload.
type PeerError struct {
	Code ErrorCode
	Msg  string
}

// Error implements error, keeping the legacy "wire: peer error: ..." shape
// (with the raw "[code] " prefix intact) so existing string matching holds.
func (e *PeerError) Error() string {
	if e.Code != CodeNone {
		return fmt.Sprintf("wire: peer error: [%s] %s", e.Code, e.Msg)
	}
	return "wire: peer error: " + e.Msg
}

// ErrorCodeOf extracts the code from a (possibly wrapped) PeerError.
func ErrorCodeOf(err error) ErrorCode {
	var pe *PeerError
	if errors.As(err, &pe) {
		return pe.Code
	}
	return CodeNone
}

// ErrorCodeFor picks the MsgError code describing why a session is being
// failed: transport-level faults get their transient codes (so the peer's
// retry policy can distinguish them), everything else stays uncoded for the
// caller to classify. A relayed PeerError keeps its original code.
func ErrorCodeFor(err error) ErrorCode {
	switch {
	case err == nil:
		return CodeNone
	case errors.Is(err, ErrFrameCorrupt):
		return CodeCorruptFrame
	case IsTimeout(err):
		return CodeTimeout
	}
	return ErrorCodeOf(err)
}

// EncodeError wraps a free-text MsgError payload, truncated to
// MaxErrorPayload.
func EncodeError(msg string) []byte { return EncodeErrorCode(CodeNone, msg) }

// EncodeErrorCode wraps a classified MsgError payload: "[code] msg",
// truncated to MaxErrorPayload.
func EncodeErrorCode(code ErrorCode, msg string) []byte {
	s := msg
	if code != CodeNone {
		s = "[" + string(code) + "] " + msg
	}
	if len(s) > MaxErrorPayload {
		s = s[:MaxErrorPayload]
	}
	return []byte(s)
}

// DecodeError returns the error carried by a MsgError payload. The payload
// is hostile input: it is truncated to MaxErrorPayload and stripped of
// non-printable bytes before it can reach a log line or terminal, and a
// recognized "[code] " prefix is lifted into PeerError.Code.
func DecodeError(b []byte) error {
	if len(b) > MaxErrorPayload {
		b = b[:MaxErrorPayload]
	}
	text := sanitizeErrorText(b)
	code, rest, ok := splitErrorCode(text)
	if ok {
		return &PeerError{Code: code, Msg: rest}
	}
	return &PeerError{Msg: text}
}

// sanitizeErrorText replaces every non-printable byte (anything outside
// 0x20..0x7E, including newlines and ANSI escape bytes) with '.'.
func sanitizeErrorText(b []byte) string {
	clean := make([]byte, len(b))
	for i, c := range b {
		if c < 0x20 || c > 0x7E {
			c = '.'
		}
		clean[i] = c
	}
	return string(clean)
}

// splitErrorCode parses a "[code] rest" prefix. Only short lowercase
// kebab-case tokens qualify, so bracketed prose is left alone.
func splitErrorCode(s string) (ErrorCode, string, bool) {
	if !strings.HasPrefix(s, "[") {
		return CodeNone, "", false
	}
	end := strings.Index(s, "] ")
	if end < 1 || end > 33 {
		return CodeNone, "", false
	}
	code := s[1:end]
	for i := 0; i < len(code); i++ {
		c := code[i]
		if (c < 'a' || c > 'z') && c != '-' {
			return CodeNone, "", false
		}
	}
	return ErrorCode(code), s[end+2:], true
}
