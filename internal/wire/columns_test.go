package wire

import "testing"

// Column-set trailer wire behavior: the 44-byte hello trailer appends a
// uint32 column bitmask; the trailer is only emitted when a non-default set
// was requested, so a value-only hello stays parseable by pre-columns
// decoders, mirroring the RowOffset/Flags/TraceID extensions.

func TestColumnSetHelpers(t *testing.T) {
	cases := []struct {
		set   ColumnSet
		count int
		valid bool
		str   string
	}{
		{0, 1, true, "value"},
		{ColValue, 1, true, "value"},
		{ColSquare, 1, true, "square"},
		{ColValue | ColSquare, 2, true, "value|square"},
		{ColValue | ColOnes, 2, true, "value|ones"},
		{ColValue | ColSquare | ColOnes, 3, true, "value|square|ones"},
		{1 << 9, 1, false, "unknown(0x200)"},
	}
	for _, c := range cases {
		if got := c.set.Count(); got != c.count {
			t.Errorf("%#x.Count() = %d, want %d", uint32(c.set), got, c.count)
		}
		if got := c.set.Valid(); got != c.valid {
			t.Errorf("%#x.Valid() = %v, want %v", uint32(c.set), got, c.valid)
		}
		if got := c.set.String(); got != c.str {
			t.Errorf("%#x.String() = %q, want %q", uint32(c.set), got, c.str)
		}
	}
}

func TestHelloColumnsRoundTrip(t *testing.T) {
	h := &Hello{
		Version:   Version,
		Scheme:    "paillier",
		PublicKey: []byte{1, 2, 3},
		VectorLen: 64,
		ChunkLen:  8,
		RowOffset: 32,
		Flags:     HelloFlagFrameCRC,
		TraceID:   [16]byte{1, 2, 3, 4},
		Columns:   ColValue | ColSquare,
	}
	got, err := DecodeHello(h.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Columns != h.Columns {
		t.Fatalf("columns round trip: %v != %v", got.Columns, h.Columns)
	}
	if got.TraceID != h.TraceID || got.Flags != h.Flags || got.RowOffset != h.RowOffset {
		t.Fatalf("co-travelling fields damaged: %+v", got)
	}
}

// TestMixedVersionColumnsInterop mirrors TestMixedVersionTraceInterop: a new
// client asking for the default column set emits a trailer an old decoder
// still accepts, a columns hello without a trace forces the trace (and
// flags) words out as zeros, and every legacy trailer form decodes with the
// zero set, which EffectiveColumns resolves to the value column.
func TestMixedVersionColumnsInterop(t *testing.T) {
	base := &Hello{Version: Version, Scheme: "paillier", PublicKey: []byte{1}, VectorLen: 10, ChunkLen: 5}

	plain := base.Encode()
	multi := *base
	multi.Columns = ColValue | ColSquare | ColOnes
	multiEnc := multi.Encode()
	// +4 flags word, +16 trace ID (zero), +4 columns word.
	if len(multiEnc) != len(plain)+4+16+4 {
		t.Fatalf("columns hello is %d bytes, plain %d; want +24", len(multiEnc), len(plain))
	}
	keyEnd := 4 + 4 + len(base.Scheme) + 4 + len(base.PublicKey)
	trailer := len(plain) - keyEnd
	if trailer != 12 && trailer != 20 && trailer != 24 && trailer != 40 {
		t.Fatalf("default-columns hello trailer is %d bytes; an old peer would reject it", trailer)
	}

	for _, h := range []*Hello{
		base,
		{Version: Version, Scheme: "paillier", PublicKey: []byte{1}, VectorLen: 10, ChunkLen: 5, RowOffset: 3},
		{Version: Version, Scheme: "paillier", PublicKey: []byte{1}, VectorLen: 10, ChunkLen: 5, Flags: HelloFlagFrameCRC},
		{Version: Version, Scheme: "paillier", PublicKey: []byte{1}, VectorLen: 10, ChunkLen: 5, TraceID: [16]byte{7}},
	} {
		got, err := DecodeHello(h.Encode())
		if err != nil {
			t.Fatalf("legacy hello rejected: %v", err)
		}
		if got.Columns != 0 {
			t.Fatalf("legacy hello sprouted columns: %v", got.Columns)
		}
		if got.EffectiveColumns() != ColValue {
			t.Fatalf("EffectiveColumns() = %v, want value", got.EffectiveColumns())
		}
	}

	got, err := DecodeHello(multiEnc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Columns != multi.Columns || got.Flags != 0 || got.HasTraceID() {
		t.Fatalf("columns decode: %+v", got)
	}
}
