package wire

import (
	"bytes"
	"errors"
	"testing"
)

// Fuzz targets for the wire parsers: whatever the bytes, decoding must
// never panic, and anything that decodes must re-encode to an equivalent
// value. `go test` runs the seed corpus; `go test -fuzz=FuzzX` explores.

func FuzzReadFrame(f *testing.F) {
	var seed bytes.Buffer
	_, _ = WriteFrame(&seed, MsgHello, []byte("seed payload"))
	f.Add(seed.Bytes())
	var crcSeed bytes.Buffer
	_, _ = WriteFrameCRC(&crcSeed, MsgSum, []byte("crc seed"))
	f.Add(crcSeed.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, n, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		if n > len(data) {
			t.Fatalf("claimed to read %d of %d bytes", n, len(data))
		}
		// Round trip: re-encoding the decoded frame with the framing it
		// arrived in must reproduce the consumed bytes. (A CRC frame that
		// decoded has, by construction, a valid trailer to reproduce.)
		var buf bytes.Buffer
		var wn int
		if fr.CRC {
			wn, err = WriteFrameCRC(&buf, fr.Type, fr.Payload)
		} else {
			wn, err = WriteFrame(&buf, fr.Type, fr.Payload)
		}
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if wn != n || !bytes.Equal(buf.Bytes(), data[:n]) {
			t.Fatal("re-encoded frame differs from consumed bytes")
		}
	})
}

func FuzzDecodeErrorPayload(f *testing.F) {
	f.Add([]byte("[busy] server busy"))
	f.Add([]byte("plain text error"))
	f.Add([]byte("[not a code] bracketed prose"))
	f.Add(bytes.Repeat([]byte{0x1B}, 2048)) // oversized ANSI-escape bomb
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		err := DecodeError(data)
		if err == nil {
			t.Fatal("DecodeError returned nil")
		}
		msg := err.Error()
		// Bounded: the sanitized text cannot exceed the payload cap plus
		// the fixed "wire: peer error: " / "[code] " dressing.
		if len(msg) > MaxErrorPayload+64 {
			t.Fatalf("error message is %d bytes", len(msg))
		}
		// Printable: nothing outside 0x20..0x7E may survive sanitization.
		for i := 0; i < len(msg); i++ {
			if msg[i] < 0x20 || msg[i] > 0x7E {
				t.Fatalf("non-printable byte %#x at %d", msg[i], i)
			}
		}
		// A recognized code must be one the encoder can reproduce within
		// bounds: re-encoding the decoded error stays under the cap.
		code := ErrorCodeOf(err)
		var pe *PeerError
		if !errors.As(err, &pe) {
			t.Fatal("DecodeError did not return a *PeerError")
		}
		if re := EncodeErrorCode(code, pe.Msg); len(re) > MaxErrorPayload {
			t.Fatalf("re-encoded payload is %d bytes", len(re))
		}
	})
}

func FuzzDecodeHello(f *testing.F) {
	h := Hello{Version: 1, Scheme: "paillier", PublicKey: []byte{1, 2}, VectorLen: 9, ChunkLen: 3}
	f.Add(h.Encode())
	f.Add([]byte{})
	f.Add(make([]byte, 24))
	traced := h
	traced.TraceID = [16]byte{1, 2, 3, 4}
	f.Add(traced.Encode())
	multi := h
	multi.Columns = ColValue | ColSquare
	f.Add(multi.Encode())
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := DecodeHello(data)
		if err != nil {
			return
		}
		// Anything that decodes must survive a semantic round trip. Byte
		// identity only holds for the canonical (20-byte-trailer) form —
		// a legacy 12-byte-trailer hello re-encodes with an explicit zero
		// RowOffset — so compare decoded values, then check the canonical
		// encoding is a fixed point.
		enc := got.Encode()
		again, err := DecodeHello(enc)
		if err != nil {
			t.Fatalf("re-encoded hello does not decode: %v", err)
		}
		if again.Version != got.Version || again.Scheme != got.Scheme ||
			!bytes.Equal(again.PublicKey, got.PublicKey) ||
			again.VectorLen != got.VectorLen || again.ChunkLen != got.ChunkLen ||
			again.RowOffset != got.RowOffset || again.Flags != got.Flags ||
			again.TraceID != got.TraceID || again.Columns != got.Columns {
			t.Fatal("hello round trip not value-preserving")
		}
		if !bytes.Equal(again.Encode(), enc) {
			t.Fatal("canonical hello encoding is not a fixed point")
		}
	})
}

func FuzzDecodeIndexChunk(f *testing.F) {
	c := IndexChunk{Offset: 7, Ciphertexts: make([]byte, 32), Width: 16}
	f.Add(c.Encode(), 16)
	f.Add([]byte{}, 1)
	f.Add(make([]byte, 9), 0)
	f.Fuzz(func(t *testing.T, data []byte, width int) {
		got, err := DecodeIndexChunk(data, width)
		if err != nil {
			return
		}
		if got.Count() < 0 {
			t.Fatal("negative count")
		}
		for i := 0; i < got.Count(); i++ {
			if len(got.At(i)) != width {
				t.Fatalf("ciphertext %d has %d bytes", i, len(got.At(i)))
			}
		}
	})
}
