package wire

import (
	"io"
	"sync"
	"sync/atomic"
)

// Meter counts bytes and frames moving through a connection. The netsim
// package converts these counts into virtual communication time, and the
// bench harness reports them directly (the paper's communication-complexity
// axis).
type Meter struct {
	mu        sync.Mutex
	bytesOut  int64
	bytesIn   int64
	framesOut int64
	framesIn  int64
}

// AddOut records an outbound frame of n bytes.
func (m *Meter) AddOut(n int) {
	m.mu.Lock()
	m.bytesOut += int64(n)
	m.framesOut++
	m.mu.Unlock()
}

// AddIn records an inbound frame of n bytes.
func (m *Meter) AddIn(n int) {
	m.mu.Lock()
	m.bytesIn += int64(n)
	m.framesIn++
	m.mu.Unlock()
}

// Snapshot returns the current counters.
func (m *Meter) Snapshot() (bytesOut, bytesIn, framesOut, framesIn int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.bytesOut, m.bytesIn, m.framesOut, m.framesIn
}

// TotalBytes returns bytes moved in both directions.
func (m *Meter) TotalBytes() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.bytesOut + m.bytesIn
}

// Reset zeroes all counters.
func (m *Meter) Reset() {
	m.mu.Lock()
	m.bytesOut, m.bytesIn, m.framesOut, m.framesIn = 0, 0, 0, 0
	m.mu.Unlock()
}

// Conn is a framed, metered, bidirectional channel. It is the only
// transport type the protocol layer touches; it can sit on top of a real
// net.Conn, an in-memory pipe, or a throttled netsim link.
type Conn struct {
	r io.Reader
	w io.Writer
	// c, when non-nil, is closed by Close.
	c io.Closer

	Meter *Meter

	// dls is the optional timeout policy (see deadline.go); its zero value
	// is inert.
	dls deadlines

	// crc, when set, appends CRC32 trailers to every sent frame (the
	// HelloFlagFrameCRC negotiation). Received frames are verified
	// statelessly whenever they carry a trailer.
	crc atomic.Bool

	// maxFrame, when positive, lowers the Recv payload ceiling below the
	// global MaxFrame (see ReadFrameLimit).
	maxFrame atomic.Int64

	// traceMu guards traceID, the session's end-to-end request identifier.
	traceMu sync.Mutex
	traceID [16]byte

	wmu sync.Mutex // serialize frame writes
	rmu sync.Mutex // serialize frame reads
}

// NewConn wraps rw in a framed, metered connection. If rw also implements
// io.Closer, Close forwards to it; if it implements Deadliner (net.Conn
// does), the idle/write timeouts of deadline.go can be armed directly.
func NewConn(rw io.ReadWriter) *Conn {
	c := &Conn{r: rw, w: rw, Meter: &Meter{}}
	if cl, ok := rw.(io.Closer); ok {
		c.c = cl
	}
	if dl, ok := rw.(Deadliner); ok {
		c.dls.dl = dl
	}
	return c
}

// EnableCRC switches the connection's send side to CRC-trailed frames
// (after HelloFlagFrameCRC negotiation — or, on the client, before sending
// the flagged hello, which is then itself CRC-framed). The receive side
// always verifies trailers when present, so no receive-side switch exists.
func (c *Conn) EnableCRC() { c.crc.Store(true) }

// CRCEnabled reports whether sent frames carry CRC trailers.
func (c *Conn) CRCEnabled() bool { return c.crc.Load() }

// SetMaxFrame lowers the Recv payload ceiling to n bytes (0 restores the
// global MaxFrame). A client expecting only a sum ciphertext or a bounded
// error message uses it to reject absurd declared lengths before
// allocating.
func (c *Conn) SetMaxFrame(n int) { c.maxFrame.Store(int64(n)) }

// SetTraceID arms the session's end-to-end trace ID: the protocol client
// includes it in the Hello it sends on this connection (the trace trailer),
// so every component the query touches records its costs under one ID. The
// zero ID (the default) means no trace is requested and no trailer is sent,
// which keeps pre-trace servers interoperable.
func (c *Conn) SetTraceID(id [16]byte) {
	c.traceMu.Lock()
	c.traceID = id
	c.traceMu.Unlock()
}

// TraceID returns the armed trace ID (zero when tracing is off).
func (c *Conn) TraceID() [16]byte {
	c.traceMu.Lock()
	defer c.traceMu.Unlock()
	return c.traceID
}

// Send writes one frame.
func (c *Conn) Send(t MsgType, payload []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.beforeSend()
	var n int
	var err error
	if c.crc.Load() {
		n, err = WriteFrameCRC(c.w, t, payload)
	} else {
		n, err = WriteFrame(c.w, t, payload)
	}
	if err != nil {
		return err
	}
	c.Meter.AddOut(n)
	return nil
}

// Recv reads one frame.
func (c *Conn) Recv() (Frame, error) {
	c.rmu.Lock()
	defer c.rmu.Unlock()
	c.beforeRecv()
	f, n, err := ReadFrameLimit(c.r, int(c.maxFrame.Load()))
	if err != nil {
		return Frame{}, err
	}
	c.Meter.AddIn(n)
	return f, nil
}

// SendError sends a MsgError frame with the given message; it is best
// effort (the peer may already be gone) and returns the write error if any.
func (c *Conn) SendError(msg string) error {
	return c.Send(MsgError, EncodeError(msg))
}

// SendErrorCode sends a classified MsgError frame ("[code] msg").
func (c *Conn) SendErrorCode(code ErrorCode, msg string) error {
	return c.Send(MsgError, EncodeErrorCode(code, msg))
}

// SendErrorFor reports err to the peer with the code ErrorCodeFor picks
// (transport faults travel classified, protocol errors as plain text).
func (c *Conn) SendErrorFor(err error) error {
	return c.Send(MsgError, EncodeErrorCode(ErrorCodeFor(err), err.Error()))
}

// Close closes the underlying transport when it is closable.
func (c *Conn) Close() error {
	if c.c != nil {
		return c.c.Close()
	}
	return nil
}

// FrameOverhead is the fixed per-frame header size in bytes.
const FrameOverhead = 5

// ChunkWireSize returns the exact on-the-wire size of a MsgIndexChunk
// carrying count ciphertexts of the given width: header + offset + body.
func ChunkWireSize(count, width int) int {
	return FrameOverhead + 8 + count*width
}
