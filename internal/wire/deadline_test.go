package wire

import (
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

func TestIdleTimeoutFailsRecv(t *testing.T) {
	a, b := net.Pipe() // net.Pipe implements deadlines since Go 1.10
	defer a.Close()
	defer b.Close()

	conn := NewConn(a)
	conn.SetIdleTimeout(30 * time.Millisecond)

	start := time.Now()
	_, err := conn.Recv()
	if err == nil {
		t.Fatal("Recv succeeded with no peer data")
	}
	if !IsTimeout(err) {
		t.Fatalf("err = %v, want timeout", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("timeout took %v, want ~30ms", elapsed)
	}
}

func TestIdleTimeoutRollsForwardPerRecv(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()

	conn := NewConn(a)
	conn.SetIdleTimeout(250 * time.Millisecond)
	peer := NewConn(b)

	// Three frames each arriving after 100ms: every arrival is within the
	// idle window even though the total exceeds it, so all must succeed.
	go func() {
		for i := 0; i < 3; i++ {
			time.Sleep(100 * time.Millisecond)
			if err := peer.Send(MsgDone, nil); err != nil {
				return
			}
		}
	}()
	for i := 0; i < 3; i++ {
		if _, err := conn.Recv(); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
	}
}

func TestWriteTimeoutFailsSend(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close() // peer never reads: an unbuffered pipe write blocks

	conn := NewConn(a)
	conn.SetWriteTimeout(30 * time.Millisecond)
	err := conn.Send(MsgSum, []byte("x"))
	if err == nil {
		t.Fatal("Send succeeded with no reader")
	}
	if !IsTimeout(err) {
		t.Fatalf("err = %v, want timeout", err)
	}
}

func TestSetDeadlinerOverridesForWrappedTransport(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()

	// Wrap the transport so NewConn cannot auto-detect deadlines, as with
	// a netsim.Throttle; then install the raw conn's deadline control.
	conn := NewConn(struct{ io.ReadWriter }{a})
	conn.SetIdleTimeout(30 * time.Millisecond)
	conn.SetDeadliner(a)

	_, err := conn.Recv()
	if !IsTimeout(err) {
		t.Fatalf("err = %v, want timeout through installed deadliner", err)
	}
}

func TestIdleTimeoutWithoutDeadlinerIsNoop(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()

	// No deadliner installed on a wrapped transport: arming the idle
	// timeout must not fire; a frame arriving after the window is fine.
	conn := NewConn(struct{ io.ReadWriter }{a})
	conn.SetIdleTimeout(20 * time.Millisecond)
	peer := NewConn(b)
	go func() {
		time.Sleep(80 * time.Millisecond)
		_ = peer.Send(MsgDone, nil)
	}()
	f, err := conn.Recv()
	if err != nil || f.Type != MsgDone {
		t.Fatalf("Recv = %+v, %v", f, err)
	}
}

func TestZeroTimeoutsAreInert(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()

	conn := NewConn(a)
	peer := NewConn(b)
	go func() { _ = peer.Send(MsgDone, nil) }()
	f, err := conn.Recv()
	if err != nil || f.Type != MsgDone {
		t.Fatalf("Recv = %+v, %v", f, err)
	}
}

func TestIsTimeout(t *testing.T) {
	if IsTimeout(errors.New("plain")) {
		t.Error("plain error misclassified as timeout")
	}
	if IsTimeout(nil) {
		t.Error("nil misclassified as timeout")
	}
}
