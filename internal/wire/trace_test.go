package wire

import (
	"bytes"
	"testing"
)

// Trace trailer wire behavior: the 40-byte hello trailer appends a 16-byte
// trace ID; the trailer is only emitted when a trace was requested, so an
// untraced hello stays parseable by pre-trace decoders (which reject
// unknown trailer lengths), mirroring the RowOffset and Flags extensions.

func TestHelloTraceIDRoundTrip(t *testing.T) {
	h := &Hello{
		Version:   Version,
		Scheme:    "paillier",
		PublicKey: []byte{1, 2, 3},
		VectorLen: 100,
		ChunkLen:  10,
		RowOffset: 50,
		Flags:     HelloFlagFrameCRC,
		TraceID:   [16]byte{0xde, 0xad, 0xbe, 0xef, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16},
	}
	got, err := DecodeHello(h.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.TraceID != h.TraceID {
		t.Fatalf("trace ID round trip: %x != %x", got.TraceID, h.TraceID)
	}
	if !got.HasTraceID() {
		t.Fatal("HasTraceID false after round trip")
	}
	if got.Flags != h.Flags || got.RowOffset != h.RowOffset || got.VectorLen != h.VectorLen {
		t.Fatalf("co-travelling fields damaged: %+v", got)
	}
}

// TestMixedVersionTraceInterop mirrors TestMixedVersionCRCInterop for the
// trace trailer: a new client not requesting a trace emits a trailer an old
// DecodeHello (which rejects the 40-byte form) still accepts, and a new
// server decoding an old (trace-less) hello sees the zero ID — no trace,
// never a protocol error.
func TestMixedVersionTraceInterop(t *testing.T) {
	base := &Hello{Version: Version, Scheme: "paillier", PublicKey: []byte{1}, VectorLen: 10, ChunkLen: 5}

	// New client, tracing off: the encoding is byte-identical to the
	// pre-trace encoding, so an old decoder cannot tell the difference.
	untraced := base.Encode()
	traced := *base
	traced.TraceID = [16]byte{1}
	tracedEnc := traced.Encode()
	if len(tracedEnc) != len(untraced)+4+16 {
		// +4: the trace trailer forces the flags word out; +16: the ID.
		t.Fatalf("traced hello is %d bytes, untraced %d; want +20", len(tracedEnc), len(untraced))
	}
	// oldDecodeHello emulation: the pre-trace decoder accepted exactly the
	// 12/20/24-byte trailers. Verify the untraced hello uses one of them.
	keyEnd := 4 + 4 + len(base.Scheme) + 4 + len(base.PublicKey)
	trailer := len(untraced) - keyEnd
	if trailer != 12 && trailer != 20 && trailer != 24 {
		t.Fatalf("untraced hello trailer is %d bytes; an old peer would reject it", trailer)
	}

	// Old client → new server: every legacy trailer form decodes with the
	// zero trace ID (no trace), never an error.
	for _, h := range []*Hello{
		base, // shortest legacy form
		{Version: Version, Scheme: "paillier", PublicKey: []byte{1}, VectorLen: 10, ChunkLen: 5, RowOffset: 3},
		{Version: Version, Scheme: "paillier", PublicKey: []byte{1}, VectorLen: 10, ChunkLen: 5, Flags: HelloFlagFrameCRC},
	} {
		got, err := DecodeHello(h.Encode())
		if err != nil {
			t.Fatalf("legacy hello rejected: %v", err)
		}
		if got.HasTraceID() {
			t.Fatalf("legacy hello sprouted a trace ID: %x", got.TraceID)
		}
	}

	// New server → traced hello: the full form decodes and the co-sent
	// flags word survives even when zero.
	got, err := DecodeHello(tracedEnc)
	if err != nil {
		t.Fatal(err)
	}
	if got.TraceID != traced.TraceID || got.Flags != 0 {
		t.Fatalf("traced decode: %+v", got)
	}
}

func TestConnTraceID(t *testing.T) {
	var buf bytes.Buffer
	c := NewConn(struct {
		*bytes.Buffer
	}{&buf})
	if c.TraceID() != ([16]byte{}) {
		t.Fatal("fresh conn has a trace ID")
	}
	id := [16]byte{9, 8, 7}
	c.SetTraceID(id)
	if c.TraceID() != id {
		t.Fatalf("TraceID = %x, want %x", c.TraceID(), id)
	}
}
