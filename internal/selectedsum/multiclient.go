package selectedsum

import (
	"crypto/rand"
	"errors"
	"fmt"
	"math/big"
	"time"

	"privstats/internal/database"
	"privstats/internal/homomorphic"
	"privstats/internal/mathx"
	"privstats/internal/netsim"
)

// Multi-client protocol (paper §3.5). k clients each handle a 1/k share of
// the index vector with their own key pairs. Learning the k partial sums
// would violate database privacy, so the server blinds partial sum P_i with
// a random R_i, where Σ R_i ≡ 0 (mod B) for a public combining modulus B.
// A ring pass then accumulates the blinded values; only the total — in
// which the blindings cancel — is ever visible in the clear.
//
// Blinding parameterization: the paper says R_i are random "mod M" without
// fixing M across the clients' independently chosen keys. This
// implementation uses an explicit public combining modulus
//
//	B = 2^(maxSumBits + SecurityBits)
//
// with R_i uniform in [0, B). Each client's view P_i + R_i is then within
// statistical distance 2^-SecurityBits of uniform, and P_i + R_i < 2B stays
// far below every client's plaintext modulus, so no unintended reduction
// occurs. The combining phase sums the V_i = P_i + R_i over the integers
// and reduces mod B once; Σ R_i ≡ 0 (mod B) makes the blinding vanish.

// MultiOptions configures a multi-client run.
type MultiOptions struct {
	// Link is the communication environment shared by all parties.
	Link netsim.Link
	// Clients is k, the number of cooperating clients (≥ 1).
	Clients int
	// ChunkSize and Pipelined configure each client's stream as in Options.
	ChunkSize int
	Pipelined bool
	// Pools, when non-nil, holds one preprocessed encryption pool per
	// client (length must equal Clients); nil means online encryption.
	Pools []homomorphic.EncryptorPool
	// SecurityBits is the statistical blinding parameter σ (default 80).
	SecurityBits int
}

// MultiResult reports a multi-client run.
type MultiResult struct {
	// Sum is the recovered total.
	Sum *big.Int
	// PerClient holds each client's measured components for its shard.
	PerClient []Timings
	// Phase1 is the modelled wall-clock of the parallel phase: the slowest
	// client's end-to-end shard time (clients run concurrently; the
	// server's per-client folds are independent partial products).
	Phase1 time.Duration
	// Phase2 is the ring-combining phase: k-1 passes plus the broadcast.
	Phase2 time.Duration
	// Total is Phase1 + Phase2.
	Total time.Duration
	// BytesUp/BytesDown aggregate all clients' traffic with the server;
	// RingBytes is the combining-phase traffic among clients.
	BytesUp, BytesDown, RingBytes int64
}

// KeyGenerator produces one key pair per client; clients choose keys
// "independently and in parallel" in the paper, so each gets its own.
type KeyGenerator func() (homomorphic.PrivateKey, error)

// RunMulti executes the §3.5 protocol in process with real cryptography:
// per-shard selected sums under k independent keys, server blinding with
// R_i summing to zero mod B, and the ring combining phase.
func RunMulti(newKey KeyGenerator, table *database.Table, sel *database.Selection, opts MultiOptions) (*MultiResult, error) {
	k := opts.Clients
	if k < 1 {
		return nil, fmt.Errorf("selectedsum: need at least 1 client, got %d", k)
	}
	if sel.Len() != table.Len() {
		return nil, fmt.Errorf("%w: selection %d vs table %d", ErrVectorLength, sel.Len(), table.Len())
	}
	if opts.Pools != nil && len(opts.Pools) != k {
		return nil, fmt.Errorf("selectedsum: %d pools for %d clients", len(opts.Pools), k)
	}
	if err := opts.Link.Validate(); err != nil {
		return nil, err
	}
	sigma := opts.SecurityBits
	if sigma == 0 {
		sigma = 80
	}
	if sigma < 1 || sigma > 4096 {
		return nil, fmt.Errorf("selectedsum: security bits %d out of range", sigma)
	}
	n := table.Len()

	// Combining modulus B = 2^(bits(max possible sum) + σ).
	maxSum := new(big.Int).Mul(big.NewInt(int64(n)), big.NewInt(1<<32-1))
	blindMod := new(big.Int).Lsh(mathx.One, uint(maxSum.BitLen()+sigma))

	// Server-side blinding: R_1..R_{k-1} uniform, R_k = -Σ R_i mod B.
	blinds := make([]*big.Int, k)
	total := new(big.Int)
	for i := 0; i < k-1; i++ {
		r, err := mathx.RandInt(rand.Reader, blindMod)
		if err != nil {
			return nil, fmt.Errorf("selectedsum: sampling blinding %d: %w", i, err)
		}
		blinds[i] = r
		total.Add(total, r)
	}
	last := new(big.Int).Neg(total)
	last.Mod(last, blindMod)
	blinds[k-1] = last

	// Phase 1: each client processes its shard. Shards are the contiguous
	// ranges [i·n/k, (i+1)·n/k); the last shard absorbs the remainder when
	// k does not divide n.
	res := &MultiResult{PerClient: make([]Timings, k)}
	blinded := make([]*big.Int, k)
	for i := 0; i < k; i++ {
		lo := i * n / k
		hi := (i + 1) * n / k
		shardTable, err := table.Shard(lo, hi)
		if err != nil {
			return nil, err
		}
		shardSel, err := sel.Slice(lo, hi)
		if err != nil {
			return nil, err
		}
		sk, err := newKey()
		if err != nil {
			return nil, fmt.Errorf("selectedsum: client %d key generation: %w", i, err)
		}
		// The blinded partial must fit the client's plaintext space
		// without wrapping, or the combining phase would be wrong.
		bound := new(big.Int).Lsh(blindMod, 1) // P_i + R_i < 2B
		if bound.Cmp(sk.PublicKey().PlaintextSpace()) >= 0 {
			return nil, fmt.Errorf("selectedsum: plaintext space too small for blinding modulus (need > %d bits)", bound.BitLen())
		}
		shardOpts := Options{
			Link:      opts.Link,
			ChunkSize: opts.ChunkSize,
			Pipelined: opts.Pipelined,
		}
		if opts.Pools != nil {
			shardOpts.Pool = opts.Pools[i]
		}
		r, err := run(sk, shardTable, shardSel, shardOpts, blinds[i])
		if err != nil {
			return nil, fmt.Errorf("selectedsum: client %d shard run: %w", i, err)
		}
		blinded[i] = r.Sum
		res.PerClient[i] = r.Timings
		res.BytesUp += r.BytesUp
		res.BytesDown += r.BytesDown
		if r.Timings.Total > res.Phase1 {
			res.Phase1 = r.Timings.Total
		}
	}

	// Phase 2: ring combining. Client 1 starts S = V_1; each client adds
	// its V_i; client k reduces mod B and broadcasts. Messages carry a
	// value < 2kB, i.e. a few dozen bytes.
	phase2Start := time.Now()
	s := new(big.Int)
	for i := 0; i < k; i++ {
		s.Add(s, blinded[i])
	}
	s.Mod(s, blindMod)
	combineCompute := time.Since(phase2Start)

	msgBytes := int64((blindMod.BitLen()+7)/8 + 16) // value + framing
	// k-1 ring hops plus k-1 broadcast sends.
	res.RingBytes = msgBytes * int64(2*(k-1))
	res.Phase2 = combineCompute
	for i := 0; i < 2*(k-1); i++ {
		res.Phase2 += opts.Link.OneWayTime(msgBytes)
	}
	res.Total = res.Phase1 + res.Phase2
	res.Sum = s
	return res, nil
}

// SplitBlinds is exposed for tests: it verifies the invariant that the
// generated blinds sum to zero mod B. (The run itself relies on it; tests
// check it independently.)
func SplitBlinds(blinds []*big.Int, mod *big.Int) error {
	if mod == nil || mod.Sign() <= 0 {
		return errors.New("selectedsum: bad blinding modulus")
	}
	total := new(big.Int)
	for _, b := range blinds {
		if b == nil || b.Sign() < 0 || b.Cmp(mod) >= 0 {
			return fmt.Errorf("selectedsum: blind %v outside [0, B)", b)
		}
		total.Add(total, b)
	}
	total.Mod(total, mod)
	if total.Sign() != 0 {
		return fmt.Errorf("selectedsum: blinds sum to %v, want 0 (mod B)", total)
	}
	return nil
}
