package selectedsum

import (
	"net"
	"strings"
	"testing"

	"privstats/internal/database"
	"privstats/internal/wire"
)

// servePair wires a client and server over net.Pipe and runs Serve in the
// background, returning the client conn and a channel with Serve's error.
func servePair(t *testing.T, table *database.Table) (*wire.Conn, chan error) {
	t.Helper()
	a, b := net.Pipe()
	clientConn := wire.NewConn(a)
	serverConn := wire.NewConn(b)
	errc := make(chan error, 1)
	go func() {
		errc <- Serve(serverConn, table)
		serverConn.Close()
	}()
	t.Cleanup(func() { clientConn.Close() })
	return clientConn, errc
}

func TestServeQueryEndToEnd(t *testing.T) {
	sk := testKey(t)
	table, sel, want := fixture(t, 120, 60)
	conn, errc := servePair(t, table)

	sum, err := Query(conn, sk, sel, 0, nil)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if sum.Cmp(want) != 0 {
		t.Errorf("sum = %v, want %v", sum, want)
	}
	if err := <-errc; err != nil {
		t.Errorf("Serve: %v", err)
	}
}

func TestServeQueryChunked(t *testing.T) {
	sk := testKey(t)
	table, sel, want := fixture(t, 95, 40)
	conn, errc := servePair(t, table)

	sum, err := Query(conn, sk, sel, 10, nil)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if sum.Cmp(want) != 0 {
		t.Errorf("sum = %v, want %v", sum, want)
	}
	if err := <-errc; err != nil {
		t.Errorf("Serve: %v", err)
	}
}

func TestServeRejectsVectorLengthMismatch(t *testing.T) {
	sk := testKey(t)
	table, _ := database.Generate(50, database.DistUniform, 1)
	// Client lies: claims 49 positions.
	sel, _ := database.NewSelection(49)
	conn, errc := servePair(t, table)

	_, err := Query(conn, sk, sel, 0, nil)
	if err == nil {
		t.Fatal("mismatched vector length should fail")
	}
	if !strings.Contains(err.Error(), "peer error") {
		t.Errorf("client should see the server's error, got: %v", err)
	}
	if serr := <-errc; serr == nil {
		t.Error("server should report the failure too")
	}
}

func TestServeRejectsNonHelloOpen(t *testing.T) {
	table := database.New([]uint32{1})
	a, b := net.Pipe()
	clientConn := wire.NewConn(a)
	serverConn := wire.NewConn(b)
	errc := make(chan error, 1)
	go func() { errc <- Serve(serverConn, table) }()

	if err := clientConn.Send(wire.MsgDone, nil); err != nil {
		t.Fatal(err)
	}
	// Server must reply with an error frame and fail.
	f, err := clientConn.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != wire.MsgError {
		t.Errorf("expected MsgError, got %#x", byte(f.Type))
	}
	if err := <-errc; err == nil {
		t.Error("Serve should fail on non-hello open")
	}
	clientConn.Close()
	serverConn.Close()
}

func TestServeRejectsUnknownScheme(t *testing.T) {
	table := database.New([]uint32{1})
	a, b := net.Pipe()
	clientConn := wire.NewConn(a)
	serverConn := wire.NewConn(b)
	errc := make(chan error, 1)
	go func() { errc <- Serve(serverConn, table) }()

	hello := wire.Hello{Version: wire.Version, Scheme: "rot13", VectorLen: 1}
	if err := clientConn.Send(wire.MsgHello, hello.Encode()); err != nil {
		t.Fatal(err)
	}
	f, err := clientConn.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != wire.MsgError || !strings.Contains(string(f.Payload), "unknown scheme") {
		t.Errorf("frame = %#x %q", byte(f.Type), f.Payload)
	}
	if err := <-errc; err == nil {
		t.Error("Serve should fail on unknown scheme")
	}
	clientConn.Close()
	serverConn.Close()
}

func TestServeRejectsBadVersion(t *testing.T) {
	table := database.New([]uint32{1})
	a, b := net.Pipe()
	clientConn := wire.NewConn(a)
	serverConn := wire.NewConn(b)
	errc := make(chan error, 1)
	go func() { errc <- Serve(serverConn, table) }()

	hello := wire.Hello{Version: 99, Scheme: "paillier", VectorLen: 1}
	if err := clientConn.Send(wire.MsgHello, hello.Encode()); err != nil {
		t.Fatal(err)
	}
	if f, err := clientConn.Recv(); err != nil || f.Type != wire.MsgError {
		t.Errorf("expected MsgError, got %v / %v", f, err)
	}
	if err := <-errc; err == nil {
		t.Error("Serve should fail on bad version")
	}
	clientConn.Close()
	serverConn.Close()
}

func TestQueryOverTCPLoopback(t *testing.T) {
	// Full stack: real TCP, real listener — what cmd/sumserver does.
	sk := testKey(t)
	table, sel, want := fixture(t, 60, 30)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	errc := make(chan error, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			errc <- err
			return
		}
		defer c.Close()
		errc <- Serve(wire.NewConn(c), table)
	}()

	c, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sum, err := Query(wire.NewConn(c), sk, sel, 16, nil)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if sum.Cmp(want) != 0 {
		t.Errorf("sum = %v, want %v", sum, want)
	}
	if err := <-errc; err != nil {
		t.Errorf("Serve: %v", err)
	}
}

func TestServeTimedRecordsPhases(t *testing.T) {
	sk := testKey(t)
	table, sel, want := fixture(t, 80, 40)

	a, b := net.Pipe()
	clientConn := wire.NewConn(a)
	serverConn := wire.NewConn(b)
	var timings PhaseTimings
	errc := make(chan error, 1)
	go func() {
		errc <- ServeTimed(serverConn, table, &timings)
		serverConn.Close()
	}()
	t.Cleanup(func() { clientConn.Close() })

	sum, err := Query(clientConn, sk, sel, 20, nil)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if sum.Cmp(want) != 0 {
		t.Errorf("sum = %v, want %v", sum, want)
	}
	if err := <-errc; err != nil {
		t.Fatalf("ServeTimed: %v", err)
	}
	// All three phases did real work (key parse, 80 folds, rerandomize).
	if timings.Hello <= 0 || timings.Absorb <= 0 || timings.Finalize <= 0 {
		t.Errorf("timings = %+v, want all positive", timings)
	}
}
