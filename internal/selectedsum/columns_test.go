package selectedsum

import (
	"math/big"
	"strings"
	"testing"

	"privstats/internal/database"
	"privstats/internal/wire"
)

// Multi-column sessions: one uplink of the encrypted selection, one MsgSum
// per requested column in ascending bit order.

func TestQueryColumnsEndToEnd(t *testing.T) {
	sk := testKey(t)
	table, sel, wantSum := fixture(t, 90, 45)
	wantSq, err := table.SelectedSumOfSquares(sel)
	if err != nil {
		t.Fatal(err)
	}
	wantCount := big.NewInt(int64(sel.Count()))

	conn, errc := servePair(t, table)
	sums, err := QueryColumns(conn, sk, sel, 10, nil, wire.ColValue|wire.ColSquare|wire.ColOnes)
	if err != nil {
		t.Fatalf("QueryColumns: %v", err)
	}
	if len(sums) != 3 {
		t.Fatalf("got %d sums, want 3", len(sums))
	}
	if sums[0].Cmp(wantSum) != 0 {
		t.Errorf("value sum = %v, want %v", sums[0], wantSum)
	}
	if sums[1].Cmp(wantSq) != 0 {
		t.Errorf("square sum = %v, want %v", sums[1], wantSq)
	}
	if sums[2].Cmp(wantCount) != 0 {
		t.Errorf("ones sum = %v, want %v", sums[2], wantCount)
	}
	if err := <-errc; err != nil {
		t.Errorf("Serve: %v", err)
	}
}

func TestQueryColumnsValueOnlyMatchesQuery(t *testing.T) {
	sk := testKey(t)
	table, sel, want := fixture(t, 40, 17)
	conn, errc := servePair(t, table)

	// A value-only column set degrades to the classic session.
	sums, err := QueryColumns(conn, sk, sel, 0, nil, wire.ColValue)
	if err != nil {
		t.Fatalf("QueryColumns: %v", err)
	}
	if len(sums) != 1 || sums[0].Cmp(want) != 0 {
		t.Errorf("sums = %v, want [%v]", sums, want)
	}
	if err := <-errc; err != nil {
		t.Errorf("Serve: %v", err)
	}
}

func TestServeRejectsUnknownColumnBits(t *testing.T) {
	table := database.New([]uint32{1, 2, 3})
	conn, errc := servePair(t, table)

	hello := wire.Hello{
		Version:   wire.Version,
		Scheme:    "paillier",
		PublicKey: mustKeyBytes(t),
		VectorLen: 3,
		Columns:   1 << 9,
	}
	if err := conn.Send(wire.MsgHello, hello.Encode()); err != nil {
		t.Fatal(err)
	}
	f, err := conn.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != wire.MsgError {
		t.Fatalf("expected MsgError, got %#x", byte(f.Type))
	}
	perr := wire.DecodeError(f.Payload)
	if wire.ErrorCodeOf(perr) != wire.CodeProtocol {
		t.Errorf("error code = %q, want protocol: %v", wire.ErrorCodeOf(perr), perr)
	}
	if !strings.Contains(perr.Error(), "unknown column") {
		t.Errorf("error should name the unknown column bits: %v", perr)
	}
	if serr := <-errc; serr == nil {
		t.Error("Serve should fail on unknown column bits")
	}
}

func mustKeyBytes(t *testing.T) []byte {
	t.Helper()
	b, err := testKey(t).PublicKey().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	return b
}
