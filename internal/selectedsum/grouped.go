package selectedsum

import (
	"errors"
	"fmt"
	"math/big"

	"privstats/internal/database"
	"privstats/internal/homomorphic"
	"privstats/internal/wire"
)

// GroupedSession folds one encrypted index vector into per-group encrypted
// sums: the server holds a PUBLIC group label per row (a region, an age
// band, a diagnosis code class) and maintains one accumulator per group, so
// a single uplink yields the client a private histogram of sums —
// Σ_{i∈I, label_i=g} x_i for every g.
//
// Privacy is unchanged from the base protocol: the labels are the server's
// public schema, the client's selection stays encrypted, and the client
// receives exactly the per-group aggregates it asked for (all groups are
// always returned, so the server learns nothing from which groups are
// "interesting").
type GroupedSession struct {
	pk     homomorphic.PublicKey
	values database.Column
	labels []int
	groups int

	accs []homomorphic.Ciphertext
	next uint64
	done bool
}

// NewGroupedSession prepares a per-group fold. labels[i] assigns row i to a
// group in [0, groups).
func NewGroupedSession(pk homomorphic.PublicKey, col database.Column, labels []int, groups int) (*GroupedSession, error) {
	if pk == nil {
		return nil, errors.New("selectedsum: nil public key")
	}
	if col == nil {
		return nil, errors.New("selectedsum: nil column")
	}
	if groups < 1 {
		return nil, fmt.Errorf("selectedsum: need at least 1 group, got %d", groups)
	}
	if len(labels) != col.Len() {
		return nil, fmt.Errorf("%w: %d labels for %d rows", ErrVectorLength, len(labels), col.Len())
	}
	for i, l := range labels {
		if l < 0 || l >= groups {
			return nil, fmt.Errorf("selectedsum: row %d has label %d outside [0,%d)", i, l, groups)
		}
	}
	return &GroupedSession{
		pk:     pk,
		values: col,
		labels: labels,
		groups: groups,
		accs:   make([]homomorphic.Ciphertext, groups),
	}, nil
}

// Absorb folds one index chunk into the per-group accumulators. The same
// ordering and validation rules as ServerSession.Absorb apply.
func (s *GroupedSession) Absorb(chunk *wire.IndexChunk) error {
	if s.done {
		return errors.New("selectedsum: absorb after finalize")
	}
	if chunk.Offset != s.next {
		return fmt.Errorf("%w: got offset %d, want %d", ErrChunkOutOfOrder, chunk.Offset, s.next)
	}
	count := chunk.Count()
	if chunk.Offset+uint64(count) > uint64(s.values.Len()) {
		return fmt.Errorf("%w: chunk [%d,%d) exceeds %d rows", ErrVectorLength, chunk.Offset, chunk.Offset+uint64(count), s.values.Len())
	}
	scalar := new(big.Int)
	for i := 0; i < count; i++ {
		row := int(chunk.Offset) + i
		ct, err := s.pk.ParseCiphertext(chunk.At(i))
		if err != nil {
			return fmt.Errorf("selectedsum: chunk ciphertext %d: %w", i, err)
		}
		x := s.values.At(row)
		if x == 0 {
			continue
		}
		scalar.SetUint64(x)
		term, err := s.pk.ScalarMul(ct, scalar)
		if err != nil {
			return fmt.Errorf("selectedsum: scaling index %d: %w", row, err)
		}
		g := s.labels[row]
		if s.accs[g] == nil {
			s.accs[g] = term
			continue
		}
		s.accs[g], err = s.pk.Add(s.accs[g], term)
		if err != nil {
			return fmt.Errorf("selectedsum: folding index %d: %w", row, err)
		}
	}
	s.next += uint64(count)
	return nil
}

// Finalize returns one rerandomized encrypted sum per group (groups with no
// contribution return a fresh encryption of zero, indistinguishable from
// any other group's response).
func (s *GroupedSession) Finalize() ([]homomorphic.Ciphertext, error) {
	if s.done {
		return nil, errors.New("selectedsum: double finalize")
	}
	if s.next != uint64(s.values.Len()) {
		return nil, fmt.Errorf("%w: folded %d of %d positions", ErrIncomplete, s.next, s.values.Len())
	}
	s.done = true
	out := make([]homomorphic.Ciphertext, s.groups)
	for g, acc := range s.accs {
		if acc == nil {
			zero, err := s.pk.Encrypt(new(big.Int))
			if err != nil {
				return nil, fmt.Errorf("selectedsum: encrypting empty group %d: %w", g, err)
			}
			out[g] = zero
			continue
		}
		fresh, err := s.pk.Rerandomize(acc)
		if err != nil {
			return nil, fmt.Errorf("selectedsum: rerandomizing group %d: %w", g, err)
		}
		out[g] = fresh
	}
	return out, nil
}
