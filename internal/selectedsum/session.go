// Package selectedsum implements the paper's private selected-sum protocol
// (Figure 1) and its four evaluated optimizations: single-pass batching with
// pipeline parallelism (§3.2), index-vector preprocessing (§3.3), their
// combination (§3.4), and the multi-client blinded variant (§3.5).
//
// The protocol: the client holds an index vector I over the server's n
// values x_1..x_n and a key pair of an additively homomorphic cryptosystem.
// It sends E(I_1)..E(I_n); the server folds Π E(I_i)^{x_i} = E(Σ I_i·x_i)
// and returns it; the client decrypts the sum.
//
// One deliberate hardening beyond the paper's prose: the server
// rerandomizes the final product before returning it. The raw product's
// randomness is Π r_i^{x_i}, a function of the database values under
// randomness the client chose — for small databases the client could
// brute-force values out of it. Rerandomization (one extra encryption of 0,
// constant cost) restores the database-privacy claim. See Finalize.
package selectedsum

import (
	"errors"
	"fmt"
	"math/big"
	"sync"

	"privstats/internal/database"
	"privstats/internal/homomorphic"
	"privstats/internal/wire"
)

// Protocol errors.
var (
	ErrChunkOutOfOrder = errors.New("selectedsum: index chunk out of order")
	ErrVectorLength    = errors.New("selectedsum: index vector length mismatch")
	ErrIncomplete      = errors.New("selectedsum: index vector incomplete at finalize")
)

// BitEncryptor produces encryptions of index bits. The plain protocol uses
// Online (encrypt on demand); the preprocessing optimization uses a
// homomorphic.EncryptorPool filled offline.
type BitEncryptor interface {
	EncryptBit(bit uint) (homomorphic.Ciphertext, error)
}

// Online encrypts bits on demand with the public key — the unoptimized
// client of Figures 2 and 3.
type Online struct {
	PK homomorphic.PublicKey
}

// EncryptBit implements BitEncryptor.
func (o Online) EncryptBit(bit uint) (homomorphic.Ciphertext, error) {
	if bit > 1 {
		return nil, fmt.Errorf("selectedsum: index bit must be 0 or 1, got %d", bit)
	}
	return o.PK.Encrypt(big.NewInt(int64(bit)))
}

// OwnerOnline encrypts bits on demand through the key owner's
// self-encryption capability — same ciphertext distribution as Online, but
// the scheme may exploit the private key (Paillier splits the randomizer
// exponentiation over the secret factors). The selected-sum client always
// qualifies: it holds the private key to decrypt the final sum.
type OwnerOnline struct {
	SK homomorphic.SelfEncryptor
}

// EncryptBit implements BitEncryptor.
func (o OwnerOnline) EncryptBit(bit uint) (homomorphic.Ciphertext, error) {
	if bit > 1 {
		return nil, fmt.Errorf("selectedsum: index bit must be 0 or 1, got %d", bit)
	}
	return o.SK.EncryptSelf(big.NewInt(int64(bit)))
}

// onlineEncryptor picks the best online bit encryptor available to a client
// holding sk: the owner fast path when the scheme exposes it, the plain
// public-key path otherwise. Stripping the capability
// (homomorphic.WithoutSelfEncrypt) forces the second branch, which tests use
// as the correctness oracle.
func onlineEncryptor(sk homomorphic.PrivateKey, pk homomorphic.PublicKey) BitEncryptor {
	if se, ok := sk.(homomorphic.SelfEncryptor); ok {
		return OwnerOnline{SK: se}
	}
	return Online{PK: pk}
}

// Pooled draws preprocessed bit encryptions — the §3.3 optimized client.
type Pooled struct {
	Pool homomorphic.EncryptorPool
}

// EncryptBit implements BitEncryptor.
func (p Pooled) EncryptBit(bit uint) (homomorphic.Ciphertext, error) {
	if bit > 1 {
		return nil, fmt.Errorf("selectedsum: index bit must be 0 or 1, got %d", bit)
	}
	return p.Pool.DrawBit(bit)
}

// EncryptRange encrypts the selection bits for positions [lo, hi) and
// returns their concatenated wire encodings. This is the client's per-chunk
// work; its duration is what the benchmarks report as client encryption
// time.
func EncryptRange(enc BitEncryptor, sel *database.Selection, lo, hi, width int) ([]byte, error) {
	if lo < 0 || hi < lo || hi > sel.Len() {
		return nil, fmt.Errorf("selectedsum: bad range [%d,%d) over %d", lo, hi, sel.Len())
	}
	out := make([]byte, 0, (hi-lo)*width)
	for i := lo; i < hi; i++ {
		ct, err := enc.EncryptBit(sel.Bit(i))
		if err != nil {
			return nil, fmt.Errorf("selectedsum: encrypting index %d: %w", i, err)
		}
		out, err = appendCiphertext(out, ct, width)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// byteAppender is the optional allocation-relief capability on ciphertexts:
// encode straight into the chunk body instead of through an intermediate
// Bytes() slice. Paillier implements it; the generic path covers the rest.
type byteAppender interface {
	AppendBytes(dst []byte) []byte
}

// appendCiphertext appends ct's fixed-width encoding to dst, taking the
// zero-copy path when the ciphertext offers it.
func appendCiphertext(dst []byte, ct homomorphic.Ciphertext, width int) ([]byte, error) {
	n := len(dst)
	if ap, ok := ct.(byteAppender); ok {
		dst = ap.AppendBytes(dst)
	} else {
		dst = append(dst, ct.Bytes()...)
	}
	if len(dst)-n != width {
		return nil, fmt.Errorf("selectedsum: ciphertext width %d, session expects %d", len(dst)-n, width)
	}
	return dst, nil
}

// ServerSession folds encrypted index chunks into the encrypted sum. It is
// the server of Figure 1: stateless beyond the running partial product, and
// it never decrypts anything.
type ServerSession struct {
	pk     homomorphic.PublicKey
	values database.Column

	acc  homomorphic.Ciphertext // nil until the first non-zero fold
	base uint64                 // global row offset of values[0] (shard sessions)
	next uint64                 // next expected vector offset (global coordinates)
	done bool
}

// NewServerSession prepares a fold over the table's value column under the
// client's public key. vectorLen must equal the table length — the client
// must supply a bit for every row or the server would learn which rows the
// query ignores.
func NewServerSession(pk homomorphic.PublicKey, table *database.Table, vectorLen uint64) (*ServerSession, error) {
	if table == nil {
		return nil, errors.New("selectedsum: nil table")
	}
	return NewColumnSession(pk, table.Column(), vectorLen)
}

// NewColumnSession is NewServerSession over an arbitrary numeric column —
// the stats layer folds the same encrypted index vector against the value
// column and the square column to compute variances privately.
func NewColumnSession(pk homomorphic.PublicKey, col database.Column, vectorLen uint64) (*ServerSession, error) {
	return NewShardSession(pk, col, vectorLen, 0)
}

// NewShardSession is NewColumnSession for a shard of a larger logical
// database: the column holds rows [rowOffset, rowOffset+vectorLen) of the
// logical table, and incoming index chunks keep their global offsets — the
// session translates. The cluster aggregator fans a client's chunks out to
// shard sessions unmodified, which keeps the framing identical on every hop
// and makes "the backend saw only its own row range" directly checkable.
func NewShardSession(pk homomorphic.PublicKey, col database.Column, vectorLen, rowOffset uint64) (*ServerSession, error) {
	if pk == nil {
		return nil, errors.New("selectedsum: nil public key")
	}
	if col == nil {
		return nil, errors.New("selectedsum: nil column")
	}
	if vectorLen != uint64(col.Len()) {
		return nil, fmt.Errorf("%w: client announces %d, table has %d rows", ErrVectorLength, vectorLen, col.Len())
	}
	return &ServerSession{pk: pk, values: col, base: rowOffset, next: rowOffset}, nil
}

// foldMinRows is the chunk size below which the naive ScalarMul loop beats
// the bucket multi-exponentiation: the bucket fold pays a per-window
// 2^(w+1)-multiplication overhead that only amortizes across enough rows.
const foldMinRows = 16

// Absorb folds one index chunk. Chunks must arrive in order and without
// gaps; each ciphertext is validated before use. The zero-valued rows are
// skipped: E(I_i)^0 = E(0) contributes nothing, and the server knows x_i,
// so the skip leaks nothing and saves an exponentiation.
//
// When the scheme implements homomorphic.MultiScalarFolder (Paillier does),
// large chunks take the bucket multi-exponentiation path instead of the
// per-row ScalarMul+Add loop — same result, a fraction of the modular
// multiplications. Other schemes fall back to the loop transparently.
func (s *ServerSession) Absorb(chunk *wire.IndexChunk) error {
	return s.absorb(chunk, 1)
}

// absorb is the shared implementation of Absorb (workers == 1) and the
// fast path of AbsorbParallel.
func (s *ServerSession) absorb(chunk *wire.IndexChunk, workers int) error {
	if s.done {
		return errors.New("selectedsum: absorb after finalize")
	}
	if chunk.Offset != s.next {
		return fmt.Errorf("%w: got offset %d, want %d", ErrChunkOutOfOrder, chunk.Offset, s.next)
	}
	count := chunk.Count()
	if chunk.Offset+uint64(count) > s.base+uint64(s.values.Len()) {
		return fmt.Errorf("%w: chunk [%d,%d) exceeds rows [%d,%d)", ErrVectorLength, chunk.Offset, chunk.Offset+uint64(count), s.base, s.base+uint64(s.values.Len()))
	}
	if folder, ok := s.pk.(homomorphic.MultiScalarFolder); ok && count >= foldMinRows {
		return s.absorbFold(chunk, folder, workers)
	}
	scalar := new(big.Int)
	for i := 0; i < count; i++ {
		ct, err := s.pk.ParseCiphertext(chunk.At(i))
		if err != nil {
			return fmt.Errorf("selectedsum: chunk ciphertext %d: %w", i, err)
		}
		x := s.values.At(int(chunk.Offset-s.base) + i)
		if x == 0 {
			continue
		}
		scalar.SetUint64(x)
		term, err := s.pk.ScalarMul(ct, scalar)
		if err != nil {
			return fmt.Errorf("selectedsum: scaling index %d: %w", chunk.Offset+uint64(i), err)
		}
		if s.acc == nil {
			s.acc = term
			continue
		}
		s.acc, err = s.pk.Add(s.acc, term)
		if err != nil {
			return fmt.Errorf("selectedsum: folding index %d: %w", chunk.Offset+uint64(i), err)
		}
	}
	s.next += uint64(count)
	return nil
}

// absorbFold folds one validated chunk through the scheme's fast
// multi-scalar capability. Every ciphertext is still parsed (and thereby
// validated) exactly as on the naive path; the folder skips the zero-valued
// rows itself.
func (s *ServerSession) absorbFold(chunk *wire.IndexChunk, folder homomorphic.MultiScalarFolder, workers int) error {
	count := chunk.Count()
	cts := make([]homomorphic.Ciphertext, count)
	ks := make([]uint64, count)
	nonzero := 0
	for i := 0; i < count; i++ {
		ct, err := s.pk.ParseCiphertext(chunk.At(i))
		if err != nil {
			return fmt.Errorf("selectedsum: chunk ciphertext %d: %w", i, err)
		}
		cts[i] = ct
		if x := s.values.At(int(chunk.Offset-s.base) + i); x != 0 {
			ks[i] = x
			nonzero++
		}
	}
	if nonzero > 0 {
		term, err := folder.FoldScalarMul(cts, ks, workers)
		if err != nil {
			return fmt.Errorf("selectedsum: folding chunk [%d,%d): %w", chunk.Offset, chunk.Offset+uint64(count), err)
		}
		if s.acc == nil {
			s.acc = term
		} else if s.acc, err = s.pk.Add(s.acc, term); err != nil {
			return fmt.Errorf("selectedsum: folding chunk [%d,%d): %w", chunk.Offset, chunk.Offset+uint64(count), err)
		}
	}
	s.next += uint64(count)
	return nil
}

// AbsorbParallel is Absorb with the chunk's fold split across workers
// goroutines. The fold is a product in a commutative group, so each worker
// computes a partial product over a contiguous slice of the chunk and the
// partials combine in any order. The paper names special-purpose hardware
// as the way past the computation bottleneck; on a stock multicore host
// this is the software equivalent for the server side.
func (s *ServerSession) AbsorbParallel(chunk *wire.IndexChunk, workers int) error {
	count := chunk.Count()
	if workers <= 1 || count < 2*workers {
		return s.Absorb(chunk)
	}
	if _, ok := s.pk.(homomorphic.MultiScalarFolder); ok && count >= foldMinRows {
		// The fast fold parallelizes inside the multi-exponentiation
		// (splitting the row range or the window range, whichever is
		// larger), so the goroutine fan-out below would only add overhead.
		return s.absorb(chunk, workers)
	}
	if s.done {
		return errors.New("selectedsum: absorb after finalize")
	}
	if chunk.Offset != s.next {
		return fmt.Errorf("%w: got offset %d, want %d", ErrChunkOutOfOrder, chunk.Offset, s.next)
	}
	if chunk.Offset+uint64(count) > s.base+uint64(s.values.Len()) {
		return fmt.Errorf("%w: chunk [%d,%d) exceeds rows [%d,%d)", ErrVectorLength, chunk.Offset, chunk.Offset+uint64(count), s.base, s.base+uint64(s.values.Len()))
	}

	partials := make([]homomorphic.Ciphertext, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * count / workers
		hi := (w + 1) * count / workers
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			scalar := new(big.Int)
			var acc homomorphic.Ciphertext
			for i := lo; i < hi; i++ {
				ct, err := s.pk.ParseCiphertext(chunk.At(i))
				if err != nil {
					errs[w] = fmt.Errorf("selectedsum: chunk ciphertext %d: %w", i, err)
					return
				}
				x := s.values.At(int(chunk.Offset-s.base) + i)
				if x == 0 {
					continue
				}
				scalar.SetUint64(x)
				term, err := s.pk.ScalarMul(ct, scalar)
				if err != nil {
					errs[w] = fmt.Errorf("selectedsum: scaling index %d: %w", chunk.Offset+uint64(i), err)
					return
				}
				if acc == nil {
					acc = term
					continue
				}
				acc, err = s.pk.Add(acc, term)
				if err != nil {
					errs[w] = fmt.Errorf("selectedsum: folding index %d: %w", chunk.Offset+uint64(i), err)
					return
				}
			}
			partials[w] = acc
		}(w, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	for _, p := range partials {
		if p == nil {
			continue
		}
		if s.acc == nil {
			s.acc = p
			continue
		}
		var err error
		s.acc, err = s.pk.Add(s.acc, p)
		if err != nil {
			return fmt.Errorf("selectedsum: combining partial products: %w", err)
		}
	}
	s.next += uint64(count)
	return nil
}

// Absorbed reports how many vector positions have been folded.
func (s *ServerSession) Absorbed() uint64 { return s.next - s.base }

// Finalize checks the vector is complete and returns the rerandomized
// encrypted sum. Optionally a blinding value can be added homomorphically —
// the multi-client protocol passes the server's R_i here; single-client
// runs pass nil.
func (s *ServerSession) Finalize(blind *big.Int) (homomorphic.Ciphertext, error) {
	if s.done {
		return nil, errors.New("selectedsum: double finalize")
	}
	if s.next != s.base+uint64(s.values.Len()) {
		return nil, fmt.Errorf("%w: folded %d of %d positions", ErrIncomplete, s.next-s.base, s.values.Len())
	}
	s.done = true

	acc := s.acc
	if acc == nil {
		// All rows were zero: the sum is zero regardless of the selection.
		zero, err := s.pk.Encrypt(new(big.Int))
		if err != nil {
			return nil, fmt.Errorf("selectedsum: encrypting empty sum: %w", err)
		}
		acc = zero
	}
	if blind != nil {
		bl := new(big.Int).Mod(blind, s.pk.PlaintextSpace())
		blCt, err := s.pk.Encrypt(bl)
		if err != nil {
			return nil, fmt.Errorf("selectedsum: encrypting blinding: %w", err)
		}
		// The blinding encryption is fresh, so it doubles as the
		// rerandomization.
		return s.pk.Add(acc, blCt)
	}
	// Rerandomize so the response's randomness is independent of the
	// database values (see the package comment).
	fresh, err := s.pk.Rerandomize(acc)
	if err != nil {
		return nil, fmt.Errorf("selectedsum: rerandomizing sum: %w", err)
	}
	return fresh, nil
}
