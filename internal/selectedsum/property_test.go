package selectedsum

import (
	"math/big"
	"testing"
	"testing/quick"

	"privstats/internal/database"
	"privstats/internal/netsim"
)

// TestRunMatchesOracleProperty drives the full protocol with arbitrary
// values and selection bitmaps (testing/quick generates both) and checks
// the decrypted sum against direct arithmetic every time.
func TestRunMatchesOracleProperty(t *testing.T) {
	sk := testKey(t)
	prop := func(values []uint16, mask uint64) bool {
		if len(values) == 0 {
			return true
		}
		if len(values) > 24 {
			values = values[:24]
		}
		rows := make([]uint32, len(values))
		for i, v := range values {
			rows[i] = uint32(v)
		}
		table := database.New(rows)
		sel, err := database.NewSelection(len(rows))
		if err != nil {
			return false
		}
		want := new(big.Int)
		for i := range rows {
			if mask>>uint(i)&1 == 1 {
				sel.Set(i)
				want.Add(want, big.NewInt(int64(rows[i])))
			}
		}
		res, err := Run(sk, table, sel, Options{Link: netsim.ShortDistance})
		if err != nil {
			return false
		}
		return res.Sum.Cmp(want) == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestChunkingInvariantProperty: for any chunk size, the protocol computes
// the same sum and sends the same number of ciphertexts.
func TestChunkingInvariantProperty(t *testing.T) {
	sk := testKey(t)
	table, sel, want := fixture(t, 40, 20)
	prop := func(chunk uint8) bool {
		cs := int(chunk%50) + 1
		res, err := Run(sk, table, sel, Options{
			Link: netsim.ShortDistance, ChunkSize: cs, Pipelined: chunk%2 == 0,
		})
		if err != nil {
			return false
		}
		if res.Sum.Cmp(want) != 0 {
			return false
		}
		wantChunks := (40 + cs - 1) / cs
		if cs >= 40 {
			wantChunks = 1
		}
		return res.Chunks == wantChunks
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
