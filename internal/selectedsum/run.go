package selectedsum

import (
	"errors"
	"fmt"
	"math/big"
	"time"

	"privstats/internal/database"
	"privstats/internal/homomorphic"
	"privstats/internal/netsim"
	"privstats/internal/wire"
)

// Options selects a protocol variant, mirroring the paper's experiments:
//
//   - zero Options (plus a Link): the direct implementation of Figures 2/3;
//   - ChunkSize + Pipelined: the §3.2 batching optimization (Figure 4);
//   - Pool set: the §3.3 preprocessing optimization (Figures 5/6);
//   - all of them: the §3.4 combination (Figure 7).
type Options struct {
	// Link is the communication environment; communication time is derived
	// from exact wire byte counts through this model (see internal/netsim).
	Link netsim.Link

	// ChunkSize is the number of index encryptions per wire chunk.
	// 0 sends the whole vector as one chunk (the unbatched protocol).
	ChunkSize int

	// Pipelined overlaps client encryption, transfer, and server folding
	// chunk by chunk (§3.2). Requires ChunkSize > 0 to have any effect.
	Pipelined bool

	// Pool, when non-nil, supplies preprocessed index-bit encryptions
	// (§3.3); when nil the client encrypts online.
	Pool homomorphic.EncryptorPool

	// ServerWorkers splits the server's fold across this many goroutines
	// (0 or 1 = sequential). A software stand-in for the special-purpose
	// hardware the paper's future work proposes for the compute bottleneck.
	ServerWorkers int
}

// Timings are the four runtime components the paper's figures break out.
type Timings struct {
	// ClientEncrypt is the client's online time producing the encrypted
	// index vector (for the preprocessed variant: the time to read stored
	// ciphertexts and serialize them).
	ClientEncrypt time.Duration
	// ServerCompute is the server's homomorphic folding time, including
	// the final rerandomization.
	ServerCompute time.Duration
	// Communication is the link-model time for all protocol bytes.
	Communication time.Duration
	// ClientDecrypt is the single final decryption.
	ClientDecrypt time.Duration
	// Total is the end-to-end online time. For pipelined runs it is the
	// pipeline makespan plus the tail (finalize, response, decrypt), which
	// is less than the sum of the components — exactly the gain Figure 4
	// measures. For sequential runs, Total == Sum().
	Total time.Duration
}

// Sum returns the sequential total of the four components.
func (t Timings) Sum() time.Duration {
	return t.ClientEncrypt + t.ServerCompute + t.Communication + t.ClientDecrypt
}

// Result is the outcome of one protocol run.
type Result struct {
	// Sum is the decrypted selected sum.
	Sum *big.Int
	// Timings are the measured/modelled runtime components.
	Timings Timings
	// BytesUp and BytesDown are the exact wire byte counts client→server
	// and server→client.
	BytesUp, BytesDown int64
	// Chunks is the number of index chunks sent.
	Chunks int
}

// Run executes one full protocol round in process: real cryptography and
// real measured compute, with communication time derived from the exact
// wire sizes through opts.Link. This is the engine behind every
// single-client experiment in the bench harness.
func Run(sk homomorphic.PrivateKey, table *database.Table, sel *database.Selection, opts Options) (*Result, error) {
	return run(sk, table, sel, opts, nil)
}

// run is Run plus an optional server-side blinding value, which the
// multi-client protocol adds at finalize (§3.5). The decrypted Result.Sum
// is then the blinded partial sum P_i + R_i.
func run(sk homomorphic.PrivateKey, table *database.Table, sel *database.Selection, opts Options, blind *big.Int) (*Result, error) {
	if sk == nil {
		return nil, errors.New("selectedsum: nil private key")
	}
	if err := opts.Link.Validate(); err != nil {
		return nil, err
	}
	if sel.Len() != table.Len() {
		return nil, fmt.Errorf("%w: selection %d vs table %d", ErrVectorLength, sel.Len(), table.Len())
	}
	pk := sk.PublicKey()
	n := table.Len()

	chunkSize := opts.ChunkSize
	if chunkSize <= 0 || chunkSize > n {
		chunkSize = n
	}

	enc := onlineEncryptor(sk, pk)
	if opts.Pool != nil {
		enc = Pooled{Pool: opts.Pool}
	}

	srv, err := NewServerSession(pk, table, uint64(n))
	if err != nil {
		return nil, err
	}

	// The Hello carries the public key; its size is charged to the uplink.
	helloSize, err := helloWireSize(pk, uint64(n), uint32(chunkSize))
	if err != nil {
		return nil, err
	}

	res := &Result{BytesUp: int64(helloSize)}
	width := pk.CiphertextSize()

	var pipe *netsim.Pipeline
	if opts.Pipelined {
		pipe, err = netsim.NewPipeline(opts.Link)
		if err != nil {
			return nil, err
		}
		// The hello travels before the first chunk; model it as a chunk
		// with no compute on either end.
		if err := pipe.AddChunk(0, int64(helloSize), 0); err != nil {
			return nil, err
		}
	}

	var t Timings
	for lo := 0; lo < n; lo += chunkSize {
		hi := lo + chunkSize
		if hi > n {
			hi = n
		}

		encStart := time.Now()
		body, err := EncryptRange(enc, sel, lo, hi, width)
		if err != nil {
			return nil, err
		}
		chunk := &wire.IndexChunk{Offset: uint64(lo), Ciphertexts: body, Width: width}
		payload := chunk.Encode()
		encDur := time.Since(encStart)
		t.ClientEncrypt += encDur

		wireBytes := int64(wire.FrameOverhead + len(payload))
		res.BytesUp += wireBytes
		res.Chunks++

		srvStart := time.Now()
		decoded, err := wire.DecodeIndexChunk(payload, width)
		if err != nil {
			return nil, err
		}
		if opts.ServerWorkers > 1 {
			err = srv.AbsorbParallel(decoded, opts.ServerWorkers)
		} else {
			err = srv.Absorb(decoded)
		}
		if err != nil {
			return nil, err
		}
		srvDur := time.Since(srvStart)
		t.ServerCompute += srvDur

		if pipe != nil {
			if err := pipe.AddChunk(encDur, wireBytes, srvDur); err != nil {
				return nil, err
			}
		}
	}

	finStart := time.Now()
	sumCt, err := srv.Finalize(blind)
	if err != nil {
		return nil, err
	}
	finalizeDur := time.Since(finStart)
	t.ServerCompute += finalizeDur

	respBytes := int64(wire.FrameOverhead + width)
	res.BytesDown = respBytes

	decStart := time.Now()
	sum, err := sk.Decrypt(sumCt)
	if err != nil {
		return nil, fmt.Errorf("selectedsum: decrypting sum: %w", err)
	}
	t.ClientDecrypt = time.Since(decStart)

	// Communication time from the link model: uplink stream + response leg.
	t.Communication = opts.Link.OneWayTime(res.BytesUp) + opts.Link.OneWayTime(respBytes)
	if pipe != nil {
		// Per-chunk encrypt/transfer/fold already overlap inside the
		// makespan; only the finalize, response leg, and decryption are
		// serial tail work.
		t.Total = pipe.Makespan() + finalizeDur + opts.Link.OneWayTime(respBytes) + t.ClientDecrypt
	} else {
		t.Total = t.Sum()
	}

	res.Sum = sum
	res.Timings = t
	return res, nil
}

// helloWireSize computes the exact wire size of the session Hello for the
// given key without sending it.
func helloWireSize(pk homomorphic.PublicKey, vectorLen uint64, chunkLen uint32) (int, error) {
	keyBytes, err := pk.MarshalBinary()
	if err != nil {
		return 0, fmt.Errorf("selectedsum: marshaling public key: %w", err)
	}
	h := wire.Hello{
		Version:   wire.Version,
		Scheme:    pk.SchemeName(),
		PublicKey: keyBytes,
		VectorLen: vectorLen,
		ChunkLen:  chunkLen,
	}
	return wire.FrameOverhead + len(h.Encode()), nil
}
