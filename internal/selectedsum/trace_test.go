package selectedsum

import (
	"net"
	"testing"

	"privstats/internal/trace"
	"privstats/internal/wire"
)

// Trace propagation through the protocol layer: a traced client hello puts
// the ID and phase spans into the server's PhaseTimings.Trace; an untraced
// hello leaves the trace ID-less (and therefore droppable by the recorder) —
// in neither direction is there a protocol error.

func serveTimedPair(t *testing.T) (*wire.Conn, *PhaseTimings, chan error) {
	t.Helper()
	table, _, _ := fixture(t, 40, 15)
	a, b := net.Pipe()
	clientConn := wire.NewConn(a)
	serverConn := wire.NewConn(b)
	timings := &PhaseTimings{Trace: trace.New("pipe")}
	errc := make(chan error, 1)
	go func() {
		errc <- ServeTimed(serverConn, table, timings)
		serverConn.Close()
	}()
	t.Cleanup(func() { clientConn.Close() })
	return clientConn, timings, errc
}

func TestServeRecordsTraceFromHello(t *testing.T) {
	sk := testKey(t)
	_, sel, want := fixture(t, 40, 15)
	conn, timings, errc := serveTimedPair(t)

	id := trace.NewID()
	conn.SetTraceID(id)
	sum, err := Query(conn, sk, sel, 8, nil)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if sum.Cmp(want) != 0 {
		t.Errorf("sum = %v, want %v", sum, want)
	}
	if err := <-errc; err != nil {
		t.Fatalf("Serve: %v", err)
	}
	timings.Trace.Finish(nil)

	snap := timings.Trace.Snapshot()
	if snap.ID != id.String() {
		t.Errorf("server trace ID = %s, want %s", snap.ID, id)
	}
	if snap.Role != "server" {
		t.Errorf("role = %q, want server", snap.Role)
	}
	byName := map[string]trace.Span{}
	for _, sp := range snap.Spans {
		byName[sp.Name] = sp
	}
	for _, phase := range []string{"hello", "absorb", "finalize"} {
		if _, ok := byName[phase]; !ok {
			t.Errorf("phase span %q missing (have %v)", phase, snap.Spans)
		}
	}
	if got := byName["absorb"].Attrs["chunks"]; got != "5" {
		t.Errorf("absorb chunks attr = %q, want 5 (40 rows / chunk 8)", got)
	}
	// The recorded phase durations must agree with the PhaseTimings the
	// metrics pipeline sees — same measurement, two sinks.
	if byName["absorb"].DurNanos != int64(timings.Absorb) {
		t.Errorf("absorb span %dns != timing %dns", byName["absorb"].DurNanos, int64(timings.Absorb))
	}
}

func TestServeWithoutTraceTrailerStaysIDless(t *testing.T) {
	sk := testKey(t)
	_, sel, want := fixture(t, 40, 15)
	conn, timings, errc := serveTimedPair(t)

	// No SetTraceID: the hello goes out in a legacy form.
	sum, err := Query(conn, sk, sel, 0, nil)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if sum.Cmp(want) != 0 {
		t.Errorf("sum = %v, want %v", sum, want)
	}
	if err := <-errc; err != nil {
		t.Fatalf("Serve: %v", err)
	}
	if timings.Trace.HasID() {
		t.Errorf("untraced session sprouted trace ID %s", timings.Trace.ID())
	}
	// The recorder contract: an ID-less trace is dropped, so "no trace
	// trailer" means "no trace retained".
	rec := trace.NewRecorder(4)
	timings.Trace.Finish(nil)
	rec.Add(timings.Trace)
	if rec.Len() != 0 {
		t.Errorf("recorder held %d traces from an untraced session", rec.Len())
	}
	// The phases were still timed: tracing changes retention, not metrics.
	if timings.Finalize <= 0 {
		t.Error("finalize timing missing on untraced session")
	}
}

// TestNilTraceCostsNothing: ServeTimed with no Trace allocated (the
// recorder-off path every pre-existing caller uses) behaves identically.
func TestNilTraceCostsNothing(t *testing.T) {
	sk := testKey(t)
	table, sel, want := fixture(t, 30, 10)
	a, b := net.Pipe()
	clientConn := wire.NewConn(a)
	serverConn := wire.NewConn(b)
	timings := &PhaseTimings{} // Trace nil
	errc := make(chan error, 1)
	go func() {
		errc <- ServeTimed(serverConn, table, timings)
		serverConn.Close()
	}()
	defer clientConn.Close()

	clientConn.SetTraceID(trace.NewID()) // client traces, server doesn't record
	sum, err := Query(clientConn, sk, sel, 0, nil)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if sum.Cmp(want) != 0 {
		t.Errorf("sum = %v, want %v", sum, want)
	}
	if err := <-errc; err != nil {
		t.Fatalf("Serve: %v", err)
	}
	if timings.Absorb <= 0 || timings.Finalize <= 0 {
		t.Error("phase timings missing with nil trace")
	}
}
