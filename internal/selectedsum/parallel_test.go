package selectedsum

import (
	"errors"
	"testing"

	"privstats/internal/database"
	"privstats/internal/netsim"
)

func TestAbsorbParallelMatchesSequential(t *testing.T) {
	sk := testKey(t)
	pk := sk.PublicKey()
	table, sel, want := fixture(t, 130, 65)
	width := pk.CiphertextSize()
	body, err := EncryptRange(Online{PK: pk}, sel, 0, 130, width)
	if err != nil {
		t.Fatal(err)
	}
	chunk := decodeChunk(t, body, 0, width)

	for _, workers := range []int{1, 2, 3, 8, 64} {
		srv, err := NewServerSession(pk, table, 130)
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.AbsorbParallel(chunk, workers); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		ct, err := srv.Finalize(nil)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sk.Decrypt(ct)
		if err != nil {
			t.Fatal(err)
		}
		if got.Cmp(want) != 0 {
			t.Errorf("workers=%d: sum=%v want %v", workers, got, want)
		}
	}
}

func TestAbsorbParallelValidation(t *testing.T) {
	sk := testKey(t)
	pk := sk.PublicKey()
	table := database.New(make([]uint32, 20))
	for i := range table.Values() {
		table.Values()[i] = uint32(i + 1)
	}
	sel, _ := database.NewSelection(20)
	sel.Set(3)
	width := pk.CiphertextSize()
	body, err := EncryptRange(Online{PK: pk}, sel, 0, 20, width)
	if err != nil {
		t.Fatal(err)
	}

	srv, _ := NewServerSession(pk, table, 20)
	// Wrong offset.
	if err := srv.AbsorbParallel(decodeChunk(t, body, 5, width), 4); !errors.Is(err, ErrChunkOutOfOrder) {
		t.Errorf("offset error = %v", err)
	}
	// Malformed ciphertext inside the chunk (zero bytes).
	bad := append([]byte{}, body...)
	for i := 0; i < width; i++ {
		bad[i] = 0
	}
	if err := srv.AbsorbParallel(decodeChunk(t, bad, 0, width), 4); err == nil {
		t.Error("zero ciphertext should fail in a worker")
	}
	// After finalize.
	srv2, _ := NewServerSession(pk, table, 20)
	if err := srv2.AbsorbParallel(decodeChunk(t, body, 0, width), 4); err != nil {
		t.Fatal(err)
	}
	if _, err := srv2.Finalize(nil); err != nil {
		t.Fatal(err)
	}
	if err := srv2.AbsorbParallel(decodeChunk(t, body, 20, width), 4); err == nil {
		t.Error("absorb after finalize should fail")
	}
}

func TestRunWithServerWorkers(t *testing.T) {
	sk := testKey(t)
	table, sel, want := fixture(t, 150, 75)
	res, err := Run(sk, table, sel, Options{
		Link:          netsim.ShortDistance,
		ServerWorkers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sum.Cmp(want) != 0 {
		t.Errorf("sum=%v want %v", res.Sum, want)
	}
	// Also combined with batching.
	res, err = Run(sk, table, sel, Options{
		Link:          netsim.ShortDistance,
		ChunkSize:     30,
		Pipelined:     true,
		ServerWorkers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sum.Cmp(want) != 0 {
		t.Errorf("batched+parallel sum=%v want %v", res.Sum, want)
	}
}

func TestAbsorbParallelTinyChunkFallsBack(t *testing.T) {
	// Chunks smaller than 2*workers take the sequential path; result is
	// identical either way.
	sk := testKey(t)
	pk := sk.PublicKey()
	table := database.New([]uint32{7, 11, 13})
	sel, _ := database.NewSelection(3)
	sel.Set(1)
	width := pk.CiphertextSize()
	body, err := EncryptRange(Online{PK: pk}, sel, 0, 3, width)
	if err != nil {
		t.Fatal(err)
	}
	srv, _ := NewServerSession(pk, table, 3)
	if err := srv.AbsorbParallel(decodeChunk(t, body, 0, width), 16); err != nil {
		t.Fatal(err)
	}
	ct, err := srv.Finalize(nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sk.Decrypt(ct)
	if err != nil || got.Int64() != 11 {
		t.Errorf("sum = %v (err %v), want 11", got, err)
	}
}
