package selectedsum

import (
	"crypto/rand"
	"math/big"
	"sync"
	"testing"

	"privstats/internal/database"
	"privstats/internal/homomorphic"
	"privstats/internal/netsim"
	"privstats/internal/paillier"
)

var (
	tkOnce sync.Once
	tkKey  *paillier.PrivateKey
	tkErr  error
)

// testKey returns a shared 256-bit test key (generated once per package).
func testKey(t testing.TB) homomorphic.PrivateKey {
	t.Helper()
	tkOnce.Do(func() { tkKey, tkErr = paillier.KeyGen(rand.Reader, 256) })
	if tkErr != nil {
		t.Fatalf("KeyGen: %v", tkErr)
	}
	return paillier.SchemeKey{SK: tkKey}
}

// fixture builds a deterministic table and selection.
func fixture(t testing.TB, n, m int) (*database.Table, *database.Selection, *big.Int) {
	t.Helper()
	table, err := database.Generate(n, database.DistSmall, 42)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := database.GenerateSelection(n, m, database.PatternRandom, 7)
	if err != nil {
		t.Fatal(err)
	}
	want, err := table.SelectedSum(sel)
	if err != nil {
		t.Fatal(err)
	}
	return table, sel, want
}

func TestRunPlainCorrectness(t *testing.T) {
	sk := testKey(t)
	for _, tc := range []struct{ n, m int }{
		{1, 0}, {1, 1}, {10, 5}, {64, 64}, {65, 0}, {200, 100},
	} {
		table, sel, want := fixture(t, tc.n, tc.m)
		res, err := Run(sk, table, sel, Options{Link: netsim.ShortDistance})
		if err != nil {
			t.Fatalf("n=%d m=%d: %v", tc.n, tc.m, err)
		}
		if res.Sum.Cmp(want) != 0 {
			t.Errorf("n=%d m=%d: sum=%v want %v", tc.n, tc.m, res.Sum, want)
		}
		if res.Chunks != 1 {
			t.Errorf("n=%d: plain run sent %d chunks, want 1", tc.n, res.Chunks)
		}
	}
}

func TestRunAllSelectionPatterns(t *testing.T) {
	sk := testKey(t)
	table, err := database.Generate(150, database.DistUniform, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []database.SelectionPattern{database.PatternRandom, database.PatternPrefix, database.PatternStride} {
		sel, err := database.GenerateSelection(150, 40, p, 9)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := table.SelectedSum(sel)
		res, err := Run(sk, table, sel, Options{Link: netsim.ShortDistance})
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if res.Sum.Cmp(want) != 0 {
			t.Errorf("%v: sum=%v want %v", p, res.Sum, want)
		}
	}
}

func TestRunBatchedCorrectnessAndChunking(t *testing.T) {
	sk := testKey(t)
	table, sel, want := fixture(t, 230, 115)
	for _, chunk := range []int{1, 7, 100, 230, 1000} {
		res, err := Run(sk, table, sel, Options{Link: netsim.ShortDistance, ChunkSize: chunk, Pipelined: true})
		if err != nil {
			t.Fatalf("chunk=%d: %v", chunk, err)
		}
		if res.Sum.Cmp(want) != 0 {
			t.Errorf("chunk=%d: sum=%v want %v", chunk, res.Sum, want)
		}
		wantChunks := (230 + chunk - 1) / chunk
		if chunk >= 230 {
			wantChunks = 1
		}
		if res.Chunks != wantChunks {
			t.Errorf("chunk=%d: %d chunks, want %d", chunk, res.Chunks, wantChunks)
		}
	}
}

func TestRunPipelinedTotalDoesNotExceedSequential(t *testing.T) {
	sk := testKey(t)
	table, sel, _ := fixture(t, 300, 150)
	res, err := Run(sk, table, sel, Options{Link: netsim.ShortDistance, ChunkSize: 50, Pipelined: true})
	if err != nil {
		t.Fatal(err)
	}
	// The pipeline overlaps stages: Total must not exceed the sequential
	// sum of components (equality only if overlap is zero).
	if res.Timings.Total > res.Timings.Sum() {
		t.Errorf("pipelined Total %v > sequential Sum %v", res.Timings.Total, res.Timings.Sum())
	}
	if res.Timings.Total <= 0 {
		t.Error("Total must be positive")
	}
}

func TestRunPreprocessedCorrectnessAndSpeed(t *testing.T) {
	sk := testKey(t)
	pk := tkKey.Public()
	table, sel, want := fixture(t, 200, 100)

	store := paillier.NewBitStore(pk)
	if err := store.Fill(200, 200); err != nil {
		t.Fatal(err)
	}
	res, err := Run(sk, table, sel, Options{
		Link: netsim.ShortDistance,
		Pool: paillier.SchemeBitStore{Store: store},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sum.Cmp(want) != 0 {
		t.Errorf("sum=%v want %v", res.Sum, want)
	}
	if store.OnlineFallbacks() != 0 {
		t.Errorf("preprocessed run fell back online %d times", store.OnlineFallbacks())
	}

	// Preprocessed client time should be well under online client time.
	online, err := Run(sk, table, sel, Options{Link: netsim.ShortDistance})
	if err != nil {
		t.Fatal(err)
	}
	if res.Timings.ClientEncrypt*2 >= online.Timings.ClientEncrypt {
		t.Errorf("preprocessing did not help: pooled %v vs online %v",
			res.Timings.ClientEncrypt, online.Timings.ClientEncrypt)
	}
}

func TestRunCombinedOptimizations(t *testing.T) {
	sk := testKey(t)
	pk := tkKey.Public()
	table, sel, want := fixture(t, 150, 75)
	store := paillier.NewBitStore(pk)
	if err := store.Fill(150, 150); err != nil {
		t.Fatal(err)
	}
	res, err := Run(sk, table, sel, Options{
		Link:      netsim.ShortDistance,
		ChunkSize: 25,
		Pipelined: true,
		Pool:      paillier.SchemeBitStore{Store: store},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sum.Cmp(want) != 0 {
		t.Errorf("sum=%v want %v", res.Sum, want)
	}
}

func TestRunEmptySelection(t *testing.T) {
	sk := testKey(t)
	table, err := database.Generate(50, database.DistUniform, 1)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := database.NewSelection(50)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(sk, table, sel, Options{Link: netsim.ShortDistance})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sum.Sign() != 0 {
		t.Errorf("empty selection sum = %v, want 0", res.Sum)
	}
}

func TestRunAllZeroDatabase(t *testing.T) {
	sk := testKey(t)
	table := database.New(make([]uint32, 40))
	sel, err := database.GenerateSelection(40, 20, database.PatternRandom, 5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(sk, table, sel, Options{Link: netsim.ShortDistance})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sum.Sign() != 0 {
		t.Errorf("all-zero database sum = %v, want 0", res.Sum)
	}
}

func TestRunValidation(t *testing.T) {
	sk := testKey(t)
	table, _ := database.Generate(10, database.DistUniform, 1)
	sel, _ := database.NewSelection(9) // wrong length
	if _, err := Run(sk, table, sel, Options{Link: netsim.ShortDistance}); err == nil {
		t.Error("selection/table length mismatch should fail")
	}
	sel10, _ := database.NewSelection(10)
	if _, err := Run(nil, table, sel10, Options{Link: netsim.ShortDistance}); err == nil {
		t.Error("nil key should fail")
	}
	if _, err := Run(sk, table, sel10, Options{}); err == nil {
		t.Error("zero link should fail")
	}
}

func TestRunByteAccounting(t *testing.T) {
	sk := testKey(t)
	table, sel, _ := fixture(t, 100, 50)
	res, err := Run(sk, table, sel, Options{Link: netsim.ShortDistance})
	if err != nil {
		t.Fatal(err)
	}
	width := sk.PublicKey().CiphertextSize()
	// Uplink must include 100 ciphertexts plus framing and hello.
	if res.BytesUp <= int64(100*width) {
		t.Errorf("BytesUp = %d, must exceed raw ciphertext bytes %d", res.BytesUp, 100*width)
	}
	if res.BytesDown != int64(5+width) {
		t.Errorf("BytesDown = %d, want %d", res.BytesDown, 5+width)
	}
	// Batched run moves slightly more (per-chunk framing) but same order.
	batched, err := Run(sk, table, sel, Options{Link: netsim.ShortDistance, ChunkSize: 10, Pipelined: true})
	if err != nil {
		t.Fatal(err)
	}
	if batched.BytesUp <= res.BytesUp {
		t.Errorf("batched BytesUp %d should exceed unbatched %d (extra frame headers)", batched.BytesUp, res.BytesUp)
	}
}

func TestResponseIsRerandomized(t *testing.T) {
	// Two sessions over identical inputs must return different ciphertext
	// bytes for the same sum (fresh randomness at finalize).
	sk := testKey(t)
	pk := sk.PublicKey()
	table, sel, _ := fixture(t, 20, 10)

	finalCt := func() []byte {
		srv, err := NewServerSession(pk, table, uint64(table.Len()))
		if err != nil {
			t.Fatal(err)
		}
		body, err := EncryptRange(Online{PK: pk}, sel, 0, 20, pk.CiphertextSize())
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.Absorb(decodeChunk(t, body, 0, pk.CiphertextSize())); err != nil {
			t.Fatal(err)
		}
		ct, err := srv.Finalize(nil)
		if err != nil {
			t.Fatal(err)
		}
		return ct.Bytes()
	}
	a, b := finalCt(), finalCt()
	if string(a) == string(b) {
		t.Fatal("two runs produced byte-identical responses")
	}
}
