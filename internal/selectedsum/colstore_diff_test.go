package selectedsum

import (
	"net"
	"testing"

	"privstats/internal/colstore"
	"privstats/internal/database"
	"privstats/internal/wire"
)

// Differential suite: a disk-backed colstore served through the full wire
// protocol must return byte-identical sums to the in-memory Table oracle —
// the pin that makes -table-dir a drop-in substrate swap.

// serveSourcePair wires a client to ServeSource over net.Pipe.
func serveSourcePair(t *testing.T, src database.Source) (*wire.Conn, chan error) {
	t.Helper()
	a, b := net.Pipe()
	clientConn := wire.NewConn(a)
	serverConn := wire.NewConn(b)
	errc := make(chan error, 1)
	go func() {
		errc <- ServeSource(serverConn, src, nil)
		serverConn.Close()
	}()
	t.Cleanup(func() { clientConn.Close() })
	return clientConn, errc
}

// buildStore materializes table as a colstore directory and reopens it
// read-only, so the test folds against disk bytes, not write buffers.
func buildStore(t *testing.T, table *database.Table, blockRows int) *colstore.Store {
	t.Helper()
	dir := t.TempDir()
	s, err := colstore.BuildFrom(table, dir, colstore.Options{BlockRows: blockRows})
	if err != nil {
		t.Fatalf("BuildFrom: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	ro, err := colstore.Open(dir, colstore.Options{ReadOnly: true, CacheBlocks: 4})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { ro.Close() })
	return ro
}

func TestColstoreMatchesTableOracle(t *testing.T) {
	sk := testKey(t)
	const n = 300
	table, err := database.Generate(n, database.DistSmall, 42)
	if err != nil {
		t.Fatal(err)
	}
	// blockRows 64 leaves a partial tail block; 300 an exact fit is not.
	store := buildStore(t, table, 64)

	for _, tc := range []struct {
		name string
		m    int
		seed int64
	}{
		{"empty-selection", 0, 1},
		{"single-row", 1, 2},
		{"sparse", 10, 3},
		{"half", n / 2, 4},
		{"all-rows", n, 5},
	} {
		t.Run(tc.name, func(t *testing.T) {
			sel, err := database.GenerateSelection(n, tc.m, database.PatternRandom, tc.seed)
			if err != nil {
				t.Fatal(err)
			}
			wantSum, err := table.SelectedSum(sel)
			if err != nil {
				t.Fatal(err)
			}
			wantSq, err := table.SelectedSumOfSquares(sel)
			if err != nil {
				t.Fatal(err)
			}
			conn, errc := serveSourcePair(t, store)
			sums, err := QueryColumns(conn, sk, sel, 32, nil, wire.ColValue|wire.ColSquare)
			if err != nil {
				t.Fatalf("QueryColumns: %v", err)
			}
			if sums[0].Cmp(wantSum) != 0 {
				t.Errorf("value sum = %v, oracle %v", sums[0], wantSum)
			}
			if sums[1].Cmp(wantSq) != 0 {
				t.Errorf("square sum = %v, oracle %v", sums[1], wantSq)
			}
			if err := <-errc; err != nil {
				t.Errorf("ServeSource: %v", err)
			}
		})
	}
}

// TestColstoreShardViewsMatchTableShards folds against block-straddling
// sub-ranges of one store and checks each against the equivalent Table
// shard — the exact path a resharded backend serves after ExtractShard.
func TestColstoreShardViewsMatchTableShards(t *testing.T) {
	sk := testKey(t)
	const n = 256
	table, err := database.Generate(n, database.DistSmall, 11)
	if err != nil {
		t.Fatal(err)
	}
	store := buildStore(t, table, 32)

	// Ranges chosen to start/end mid-block and to straddle several blocks.
	for _, r := range [][2]int{{0, 256}, {0, 100}, {37, 201}, {95, 97}, {31, 33}, {128, 256}} {
		lo, hi := r[0], r[1]
		view, err := store.Range(lo, hi)
		if err != nil {
			t.Fatalf("Range(%d,%d): %v", lo, hi, err)
		}
		shard, err := table.Shard(lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		sel, err := database.GenerateSelection(hi-lo, (hi-lo)/2, database.PatternRandom, int64(lo))
		if err != nil {
			t.Fatal(err)
		}
		wantSum, err := shard.SelectedSum(sel)
		if err != nil {
			t.Fatal(err)
		}
		wantSq, err := shard.SelectedSumOfSquares(sel)
		if err != nil {
			t.Fatal(err)
		}
		conn, errc := serveSourcePair(t, view)
		sums, err := QueryColumns(conn, sk, sel, 16, nil, wire.ColValue|wire.ColSquare)
		if err != nil {
			t.Fatalf("range [%d,%d): QueryColumns: %v", lo, hi, err)
		}
		if sums[0].Cmp(wantSum) != 0 {
			t.Errorf("range [%d,%d): value sum = %v, oracle %v", lo, hi, sums[0], wantSum)
		}
		if sums[1].Cmp(wantSq) != 0 {
			t.Errorf("range [%d,%d): square sum = %v, oracle %v", lo, hi, sums[1], wantSq)
		}
		if err := <-errc; err != nil {
			t.Errorf("range [%d,%d): ServeSource: %v", lo, hi, err)
		}
	}
}

// TestColstoreExtractedShardMatchesOracle runs the full migration shape:
// extract a block-straddling range into its own directory, reopen it, and
// check the extracted store returns the same sums as the Table shard.
func TestColstoreExtractedShardMatchesOracle(t *testing.T) {
	sk := testKey(t)
	const n = 300
	table, err := database.Generate(n, database.DistSmall, 77)
	if err != nil {
		t.Fatal(err)
	}
	src := buildStore(t, table, 64)

	const lo, hi = 90, 250 // starts and ends mid-block, spans 3 block boundaries
	dst := t.TempDir()
	if err := colstore.ExtractShard(src, dst, lo, hi, colstore.Options{BlockRows: 32}); err != nil {
		t.Fatalf("ExtractShard: %v", err)
	}
	ext, err := colstore.Open(dst, colstore.Options{ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	defer ext.Close()
	if got := ext.BaseRow(); got != lo {
		t.Errorf("extracted BaseRow = %d, want %d", got, lo)
	}

	shard, err := table.Shard(lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := database.GenerateSelection(hi-lo, 80, database.PatternRandom, 5)
	if err != nil {
		t.Fatal(err)
	}
	wantSum, err := shard.SelectedSum(sel)
	if err != nil {
		t.Fatal(err)
	}
	wantSq, err := shard.SelectedSumOfSquares(sel)
	if err != nil {
		t.Fatal(err)
	}
	conn, errc := serveSourcePair(t, ext)
	sums, err := QueryColumns(conn, sk, sel, 0, nil, wire.ColValue|wire.ColSquare)
	if err != nil {
		t.Fatalf("QueryColumns: %v", err)
	}
	if sums[0].Cmp(wantSum) != 0 {
		t.Errorf("value sum = %v, oracle %v", sums[0], wantSum)
	}
	if sums[1].Cmp(wantSq) != 0 {
		t.Errorf("square sum = %v, oracle %v", sums[1], wantSq)
	}
	if err := <-errc; err != nil {
		t.Errorf("ServeSource: %v", err)
	}
}
