package selectedsum

import (
	"math/big"
	"testing"

	"privstats/internal/homomorphic"
	"privstats/internal/netsim"
)

// TestRunOwnerFastPathMatchesStrippedOracle: the same query must return the
// same sum whether the client encrypts through the owner's CRT capability
// (the default, since it holds the private key) or through the public-key
// oracle forced by stripping SelfEncryptor.
func TestRunOwnerFastPathMatchesStrippedOracle(t *testing.T) {
	sk := testKey(t)
	if _, ok := sk.(homomorphic.SelfEncryptor); !ok {
		t.Fatal("paillier scheme key lost the SelfEncryptor capability")
	}
	stripped := homomorphic.WithoutSelfEncrypt(sk)
	if _, ok := stripped.(homomorphic.SelfEncryptor); ok {
		t.Fatal("WithoutSelfEncrypt did not strip the capability")
	}
	for _, tc := range []struct{ n, m int }{{40, 13}, {100, 100}, {64, 0}} {
		table, sel, want := fixture(t, tc.n, tc.m)
		fast, err := Run(sk, table, sel, Options{Link: netsim.ShortDistance, ChunkSize: 32})
		if err != nil {
			t.Fatalf("n=%d owner run: %v", tc.n, err)
		}
		slow, err := Run(stripped, table, sel, Options{Link: netsim.ShortDistance, ChunkSize: 32})
		if err != nil {
			t.Fatalf("n=%d stripped run: %v", tc.n, err)
		}
		if fast.Sum.Cmp(want) != 0 || slow.Sum.Cmp(want) != 0 {
			t.Errorf("n=%d m=%d: owner sum=%v, oracle sum=%v, want %v", tc.n, tc.m, fast.Sum, slow.Sum, want)
		}
		if fast.BytesUp != slow.BytesUp || fast.BytesDown != slow.BytesDown {
			t.Errorf("n=%d: wire sizes diverge between paths: up %d vs %d, down %d vs %d",
				tc.n, fast.BytesUp, slow.BytesUp, fast.BytesDown, slow.BytesDown)
		}
	}
}

// TestOwnerOnlineRejectsBadBit mirrors Online's input validation.
func TestOwnerOnlineRejectsBadBit(t *testing.T) {
	sk := testKey(t)
	enc := onlineEncryptor(sk, sk.PublicKey())
	if _, ok := enc.(OwnerOnline); !ok {
		t.Fatalf("onlineEncryptor picked %T for a self-encrypting key", enc)
	}
	if _, err := enc.EncryptBit(2); err == nil {
		t.Error("EncryptBit(2) should fail")
	}
	ct, err := enc.EncryptBit(1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := sk.Decrypt(ct)
	if err != nil {
		t.Fatal(err)
	}
	if m.Cmp(big.NewInt(1)) != 0 {
		t.Errorf("owner-encrypted bit decrypts to %v, want 1", m)
	}
}
