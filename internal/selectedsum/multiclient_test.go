package selectedsum

import (
	"crypto/rand"
	"math/big"
	"testing"

	"privstats/internal/database"
	"privstats/internal/homomorphic"
	"privstats/internal/netsim"
	"privstats/internal/paillier"
)

// multiKeyGen returns a KeyGenerator producing fresh 256-bit keys.
func multiKeyGen() KeyGenerator {
	return func() (homomorphic.PrivateKey, error) {
		sk, err := paillier.KeyGen(rand.Reader, 256)
		if err != nil {
			return nil, err
		}
		return paillier.SchemeKey{SK: sk}, nil
	}
}

func TestRunMultiCorrectness(t *testing.T) {
	for _, k := range []int{1, 2, 3, 5} {
		table, sel, want := fixture(t, 90, 45)
		res, err := RunMulti(multiKeyGen(), table, sel, MultiOptions{
			Link:    netsim.ShortDistance,
			Clients: k,
		})
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if res.Sum.Cmp(want) != 0 {
			t.Errorf("k=%d: sum=%v want %v", k, res.Sum, want)
		}
		if len(res.PerClient) != k {
			t.Errorf("k=%d: %d per-client timings", k, len(res.PerClient))
		}
		if res.Total != res.Phase1+res.Phase2 {
			t.Errorf("k=%d: Total %v != Phase1 %v + Phase2 %v", k, res.Total, res.Phase1, res.Phase2)
		}
	}
}

func TestRunMultiUnevenShards(t *testing.T) {
	// n = 100, k = 3: shards of 33/33/34.
	table, sel, want := fixture(t, 100, 50)
	res, err := RunMulti(multiKeyGen(), table, sel, MultiOptions{
		Link:    netsim.ShortDistance,
		Clients: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sum.Cmp(want) != 0 {
		t.Errorf("sum=%v want %v", res.Sum, want)
	}
}

func TestRunMultiWithBatchingAndPools(t *testing.T) {
	table, sel, want := fixture(t, 60, 30)
	// Per-client preprocessed pools need per-client keys; generate keys
	// first and hand them out in order.
	const k = 3
	keys := make([]homomorphic.PrivateKey, k)
	pools := make([]homomorphic.EncryptorPool, k)
	for i := 0; i < k; i++ {
		sk, err := paillier.KeyGen(rand.Reader, 256)
		if err != nil {
			t.Fatal(err)
		}
		keys[i] = paillier.SchemeKey{SK: sk}
		store := paillier.NewBitStore(sk.Public())
		if err := store.Fill(30, 30); err != nil {
			t.Fatal(err)
		}
		pools[i] = paillier.SchemeBitStore{Store: store}
	}
	next := 0
	gen := func() (homomorphic.PrivateKey, error) {
		k := keys[next]
		next++
		return k, nil
	}
	res, err := RunMulti(gen, table, sel, MultiOptions{
		Link:      netsim.ShortDistance,
		Clients:   k,
		ChunkSize: 8,
		Pipelined: true,
		Pools:     pools,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sum.Cmp(want) != 0 {
		t.Errorf("sum=%v want %v", res.Sum, want)
	}
}

func TestRunMultiValidation(t *testing.T) {
	table, sel, _ := fixture(t, 10, 5)
	if _, err := RunMulti(multiKeyGen(), table, sel, MultiOptions{Link: netsim.ShortDistance, Clients: 0}); err == nil {
		t.Error("0 clients should fail")
	}
	if _, err := RunMulti(multiKeyGen(), table, sel, MultiOptions{Link: netsim.ShortDistance, Clients: 2, Pools: make([]homomorphic.EncryptorPool, 1)}); err == nil {
		t.Error("pool count mismatch should fail")
	}
	if _, err := RunMulti(multiKeyGen(), table, sel, MultiOptions{Clients: 2}); err == nil {
		t.Error("zero link should fail")
	}
	badSel, _ := database.NewSelection(9)
	if _, err := RunMulti(multiKeyGen(), table, badSel, MultiOptions{Link: netsim.ShortDistance, Clients: 2}); err == nil {
		t.Error("selection length mismatch should fail")
	}
	// Blinding modulus exceeding the plaintext space must be rejected:
	// σ=300 pushes 2B past a 256-bit modulus.
	if _, err := RunMulti(multiKeyGen(), table, sel, MultiOptions{Link: netsim.ShortDistance, Clients: 2, SecurityBits: 300}); err == nil {
		t.Error("oversized blinding should fail")
	}
	if _, err := RunMulti(multiKeyGen(), table, sel, MultiOptions{Link: netsim.ShortDistance, Clients: 2, SecurityBits: -1}); err == nil {
		t.Error("negative security bits should fail")
	}
}

func TestSplitBlindsInvariant(t *testing.T) {
	mod := big.NewInt(1000)
	good := []*big.Int{big.NewInt(300), big.NewInt(500), big.NewInt(200)}
	if err := SplitBlinds(good, mod); err != nil {
		t.Errorf("valid blinds rejected: %v", err)
	}
	bad := []*big.Int{big.NewInt(300), big.NewInt(500), big.NewInt(201)}
	if err := SplitBlinds(bad, mod); err == nil {
		t.Error("non-cancelling blinds accepted")
	}
	outOfRange := []*big.Int{big.NewInt(1000), big.NewInt(0)}
	if err := SplitBlinds(outOfRange, mod); err == nil {
		t.Error("blind == mod accepted")
	}
	if err := SplitBlinds(good, nil); err == nil {
		t.Error("nil modulus accepted")
	}
}

func TestRunMultiBlindedPartialsDifferFromTrue(t *testing.T) {
	// Statistical sanity: a client's decrypted value must not equal its
	// true partial sum (probability ~2^-119 under correct blinding).
	// RunMulti does not expose partials, so exercise the layer below.
	sk := testKey(t)
	table := database.New([]uint32{100, 200, 300})
	sel, _ := database.NewSelection(3)
	sel.Set(0)
	sel.Set(1) // true partial 300

	blindMod := new(big.Int).Lsh(big.NewInt(1), 119)
	r, err := rand.Int(rand.Reader, blindMod)
	if err != nil {
		t.Fatal(err)
	}
	res, err := run(sk, table, sel, Options{Link: netsim.ShortDistance}, r)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sum.Cmp(big.NewInt(300)) == 0 {
		t.Fatal("blinded partial equals true partial; blinding is broken")
	}
	unblinded := new(big.Int).Sub(res.Sum, r)
	if unblinded.Int64() != 300 {
		t.Errorf("unblinded partial = %v, want 300", unblinded)
	}
}
