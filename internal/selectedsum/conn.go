package selectedsum

import (
	"errors"
	"fmt"
	"math/big"
	"strconv"
	"time"

	"privstats/internal/database"
	"privstats/internal/homomorphic"
	"privstats/internal/trace"
	"privstats/internal/wire"
)

// This file is the transport-facing form of the protocol: an actual
// client/server exchange over a framed connection (TCP in the cmd tools,
// net.Pipe in tests, optionally wrapped in a netsim.Throttle). The
// in-process Run in run.go is the measurement engine; this is the deployable
// one. Both share ServerSession and BitEncryptor, so they cannot drift.

// PhaseTimings records the server-side compute cost of one session, broken
// into the protocol's phases. Durations cover the server's own work only —
// waiting in Recv for the client is excluded — so the numbers stay
// meaningful for capacity planning even over slow or idle links. The server
// runtime feeds them into its per-phase histograms.
type PhaseTimings struct {
	// Hello is parsing the hello and building the session (key parse
	// included — for Paillier that is a couple of big.Int reads).
	Hello time.Duration
	// Absorb is the homomorphic folding of all index chunks — the
	// Π E(I_i)^{x_i} work that dominates Figure 1's server cost.
	Absorb time.Duration
	// Finalize is the final rerandomization plus encoding the response.
	Finalize time.Duration

	// Trace, when non-nil, receives the same phases as spans plus the
	// trace ID parsed from the Hello. The server runtime allocates it when
	// a trace recorder is configured; handlers record into it
	// unconditionally (all trace methods are nil-safe).
	Trace *trace.Trace
}

// Serve answers exactly one selected-sum session on conn: it reads the
// Hello, absorbs index chunks until MsgDone, and replies with the encrypted
// sum. Protocol violations are reported to the peer via MsgError before
// returning the error.
func Serve(conn *wire.Conn, table *database.Table) error {
	return ServeTimed(conn, table, nil)
}

// ServeTimed is Serve with per-phase timing capture: when timings is
// non-nil it is filled in as the session progresses, so a caller observing
// a failed session still sees the phases that completed.
func ServeTimed(conn *wire.Conn, table *database.Table, timings *PhaseTimings) error {
	if table == nil {
		return errors.New("selectedsum: nil table")
	}
	return ServeSource(conn, table, timings)
}

// ServeSource is ServeTimed over any database.Source — the in-memory Table
// or a disk-backed column store serve byte-identical sessions. The source's
// columns are snapshotted once at the hello, so a session folds against a
// consistent row prefix even while the store ingests concurrently.
func ServeSource(conn *wire.Conn, src database.Source, timings *PhaseTimings) error {
	if src == nil {
		return errors.New("selectedsum: nil source")
	}
	if timings == nil {
		timings = &PhaseTimings{}
	}
	// fail reports a protocol error to the peer. The client may still be
	// streaming its index vector, and on an unbuffered transport
	// (net.Pipe) writing the error against an in-flight chunk would
	// deadlock — so the error is written concurrently while a drain
	// goroutine keeps consuming the client's frames. The drain goroutine
	// exits when the client stops sending (it blocks in Recv until the
	// connection closes, which the caller does after Serve returns).
	fail := func(err error) error {
		code := wire.ErrorCodeFor(err)
		if code == wire.CodeNone {
			// Everything the serve loop rejects that is not a transport
			// fault is a deterministic protocol rejection.
			code = wire.CodeProtocol
		}
		sent := make(chan struct{})
		go func() {
			defer close(sent)
			_ = conn.SendErrorCode(code, err.Error())
		}()
		go func() {
			for {
				f, rerr := conn.Recv()
				if rerr != nil || f.Type == wire.MsgDone || f.Type == wire.MsgError {
					return
				}
			}
		}()
		<-sent
		return err
	}

	f, err := conn.Recv()
	if err != nil {
		return fmt.Errorf("selectedsum: reading hello: %w", err)
	}
	helloStart := time.Now()
	if f.Type != wire.MsgHello {
		return fail(fmt.Errorf("selectedsum: expected hello, got message type %#x", byte(f.Type)))
	}
	hello, err := wire.DecodeHello(f.Payload)
	if err != nil {
		return fail(err)
	}
	if hello.Version != wire.Version {
		return fail(fmt.Errorf("selectedsum: unsupported protocol version %d", hello.Version))
	}
	if hello.Flags&wire.HelloFlagFrameCRC != 0 {
		// The client asked for CRC-trailed frames; everything we send from
		// here on carries one. (Inbound frames are verified statelessly
		// whenever they carry a trailer, no switch needed.)
		conn.EnableCRC()
	}
	pk, err := homomorphic.ParsePublicKey(hello.Scheme, hello.PublicKey)
	if err != nil {
		return fail(err)
	}
	if !hello.Columns.Valid() {
		return fail(fmt.Errorf("selectedsum: unknown column bits in set %s", hello.Columns))
	}
	cols := hello.EffectiveColumns()
	// A non-zero RowOffset scopes the session to a shard of a larger
	// logical database: this table serves rows [RowOffset,
	// RowOffset+VectorLen) and index chunks keep their global offsets. One
	// shard session per requested column: a multi-column session absorbs
	// each uplink chunk into every fold and replies with one sum per
	// column, in ascending bit order — the paper's variance trick (one
	// uplink, several response ciphertexts) at the wire layer.
	sessions := make([]*ServerSession, 0, cols.Count())
	valueCol := src.Column()
	for _, col := range []struct {
		bit  wire.ColumnSet
		data database.Column
	}{
		{wire.ColValue, valueCol},
		{wire.ColSquare, src.SquareColumn()},
		{wire.ColOnes, database.Ones(valueCol.Len())},
	} {
		if !cols.Has(col.bit) {
			continue
		}
		srv, err := NewShardSession(pk, col.data, hello.VectorLen, hello.RowOffset)
		if err != nil {
			return fail(err)
		}
		sessions = append(sessions, srv)
	}
	timings.Hello = time.Since(helloStart)

	// Trace recording: the ID arrives in the hello trailer (zero = no
	// trace requested, and the recorder drops ID-less traces). Only
	// timings, counts, and topology are recorded — never chunk contents,
	// the partial sum, or anything else under the client's key (§12).
	tr := timings.Trace
	tr.SetID(trace.ID(hello.TraceID))
	tr.SetRole("server")
	tr.Annotate("scheme", hello.Scheme)
	tr.Annotate("rows", strconv.FormatUint(hello.VectorLen, 10))
	if hello.RowOffset != 0 {
		tr.Annotate("row_offset", strconv.FormatUint(hello.RowOffset, 10))
	}
	if hello.Columns != 0 {
		tr.Annotate("columns", cols.String())
	}
	tr.Observe("hello", helloStart, timings.Hello, nil)

	var absorbStart time.Time
	chunks := 0
	width := pk.CiphertextSize()
	for {
		f, err := conn.Recv()
		if err != nil {
			if errors.Is(err, wire.ErrFrameCorrupt) {
				return fail(err)
			}
			return fmt.Errorf("selectedsum: reading chunk: %w", err)
		}
		// After CRC negotiation the client trails every frame; a plain
		// frame here means the type byte's flag bit (or the whole header)
		// was corrupted in flight, so classify it as corruption — a
		// retryable transport fault — not a protocol violation.
		if conn.CRCEnabled() && !f.CRC {
			return fail(fmt.Errorf("selectedsum: plain frame type %#x in a CRC session: %w", byte(f.Type), wire.ErrFrameCorrupt))
		}
		switch f.Type {
		case wire.MsgIndexChunk:
			chunkStart := time.Now()
			if chunks == 0 {
				absorbStart = chunkStart
			}
			chunks++
			chunk, err := wire.DecodeIndexChunk(f.Payload, width)
			if err != nil {
				return fail(err)
			}
			// One uplink chunk feeds every requested fold.
			for _, srv := range sessions {
				if err := srv.Absorb(chunk); err != nil {
					return fail(err)
				}
			}
			timings.Absorb += time.Since(chunkStart)
		case wire.MsgDone:
			if chunks > 0 {
				// One span for the whole fold: the duration is the compute
				// time only (waiting in Recv excluded), the attrs carry the
				// chunk count — per-chunk spans would bloat a long upload.
				tr.Observe("absorb", absorbStart, timings.Absorb,
					map[string]string{"chunks": strconv.Itoa(chunks)})
			}
			finStart := time.Now()
			bodies := make([][]byte, len(sessions))
			for i, srv := range sessions {
				sumCt, err := srv.Finalize(nil)
				if err != nil {
					return fail(err)
				}
				bodies[i] = sumCt.Bytes()
			}
			timings.Finalize = time.Since(finStart)
			tr.Observe("finalize", finStart, timings.Finalize, nil)
			for _, body := range bodies {
				if err := conn.Send(wire.MsgSum, body); err != nil {
					return fmt.Errorf("selectedsum: sending sum: %w", err)
				}
			}
			return nil
		case wire.MsgError:
			return wire.DecodeError(f.Payload)
		default:
			return fail(fmt.Errorf("selectedsum: unexpected message type %#x mid-session", byte(f.Type)))
		}
	}
}

// VectorSource yields the client's encrypted protocol vector entry by
// entry. The 0/1 selection of the base protocol and the integer weight
// vectors of the SPFE extensions both implement it, so the same transport
// client serves both.
type VectorSource interface {
	// Len is the vector length n (must match the server's table).
	Len() int
	// EncryptAt returns a fresh encryption of entry i.
	EncryptAt(i int) (homomorphic.Ciphertext, error)
}

// selectionSource adapts a 0/1 selection plus a bit encryptor.
type selectionSource struct {
	sel *database.Selection
	enc BitEncryptor
}

func (s selectionSource) Len() int { return s.sel.Len() }
func (s selectionSource) EncryptAt(i int) (homomorphic.Ciphertext, error) {
	return s.enc.EncryptBit(s.sel.Bit(i))
}

// Query runs the client side of one session over conn: it streams the
// encrypted selection in chunks of chunkSize (0 = single chunk) and returns
// the decrypted sum. pool, when non-nil, supplies preprocessed bit
// encryptions.
func Query(conn *wire.Conn, sk homomorphic.PrivateKey, sel *database.Selection, chunkSize int, pool homomorphic.EncryptorPool) (*big.Int, error) {
	if sk == nil {
		return nil, errors.New("selectedsum: nil private key")
	}
	enc := onlineEncryptor(sk, sk.PublicKey())
	if pool != nil {
		enc = Pooled{Pool: pool}
	}
	return QueryVector(conn, sk, selectionSource{sel: sel, enc: enc}, chunkSize)
}

// QueryColumns runs one multi-column session: the encrypted selection is
// uploaded once and the server folds it against every column in cols,
// replying with one sum per set bit in ascending bit order. The returned
// slice has cols.Count() decrypted sums in that same order. An empty (or
// value-only) set degrades to the classic single-sum session, byte-identical
// on the wire to a pre-columns client.
func QueryColumns(conn *wire.Conn, sk homomorphic.PrivateKey, sel *database.Selection, chunkSize int, pool homomorphic.EncryptorPool, cols wire.ColumnSet) ([]*big.Int, error) {
	if sk == nil {
		return nil, errors.New("selectedsum: nil private key")
	}
	if !cols.Valid() {
		return nil, fmt.Errorf("selectedsum: unknown column bits in set %s", cols)
	}
	enc := onlineEncryptor(sk, sk.PublicKey())
	if pool != nil {
		enc = Pooled{Pool: pool}
	}
	return queryVector(conn, sk, selectionSource{sel: sel, enc: enc}, chunkSize, cols)
}

// QueryVector is Query over an arbitrary encrypted-vector source — the
// weighted-sum generalization of the paper's Section 2 ("integer weights in
// some larger range could be used"). The server is oblivious to the
// difference: it folds whatever ciphertexts arrive.
//
// The response is watched concurrently with the upload (the 100-continue
// pattern): a server that rejects the session early — busy, protocol error,
// idle timeout — sends MsgError while the client is still streaming, and
// the client must read it then, not after n chunks. Without the watcher the
// client only notices via a broken-pipe write error once the server hangs
// up, and the RST that follows can destroy the unread explanation.
func QueryVector(conn *wire.Conn, sk homomorphic.PrivateKey, src VectorSource, chunkSize int) (*big.Int, error) {
	sums, err := queryVector(conn, sk, src, chunkSize, 0)
	if err != nil {
		return nil, err
	}
	return sums[0], nil
}

// queryVector is the shared client loop: upload once, collect one decrypted
// sum per requested column (cols == 0 means the classic value-only session,
// encoded without the columns trailer so old servers still parse).
func queryVector(conn *wire.Conn, sk homomorphic.PrivateKey, src VectorSource, chunkSize int, cols wire.ColumnSet) ([]*big.Int, error) {
	if sk == nil {
		return nil, errors.New("selectedsum: nil private key")
	}
	if src == nil {
		return nil, errors.New("selectedsum: nil vector source")
	}
	if cols == wire.ColValue {
		// Value-only is the wire default; omit the trailer for interop.
		cols = 0
	}
	pk := sk.PublicKey()
	n := src.Len()
	if chunkSize <= 0 || chunkSize > n {
		chunkSize = n
	}

	keyBytes, err := pk.MarshalBinary()
	if err != nil {
		return nil, fmt.Errorf("selectedsum: marshaling public key: %w", err)
	}
	hello := wire.Hello{
		Version:   wire.Version,
		Scheme:    pk.SchemeName(),
		PublicKey: keyBytes,
		VectorLen: uint64(n),
		ChunkLen:  uint32(chunkSize),
		// An armed (non-zero) conn trace ID travels in the hello trailer;
		// the zero default emits no trailer, so old servers still parse.
		TraceID: conn.TraceID(),
		Columns: cols,
	}
	if conn.CRCEnabled() {
		hello.Flags |= wire.HelloFlagFrameCRC
	}
	if err := conn.Send(wire.MsgHello, hello.Encode()); err != nil {
		return nil, fmt.Errorf("selectedsum: sending hello: %w", err)
	}
	// The only frames the server sends are one sum ciphertext or one
	// bounded error; cap the inbound declared length accordingly so a
	// corrupted or malicious length header cannot trigger a giant
	// allocation.
	limit := pk.CiphertextSize()
	if limit < wire.MaxErrorPayload {
		limit = wire.MaxErrorPayload
	}
	conn.SetMaxFrame(limit + 64)

	// The server's first frame (the first sum, or an early error) is read
	// by a single background Recv; any further sums of a multi-column
	// session arrive strictly after it and are read inline below.
	type response struct {
		f   wire.Frame
		err error
	}
	respc := make(chan response, 1)
	go func() {
		f, err := conn.Recv()
		respc <- response{f, err}
	}()
	// early drains an already-arrived server frame mid-upload; any frame
	// before our MsgDone means the session is over (only MsgError is
	// expected, but anything else is fatal too).
	early := func() error {
		select {
		case r := <-respc:
			switch {
			case r.err != nil:
				return fmt.Errorf("selectedsum: reading early reply: %w", r.err)
			case r.f.Type == wire.MsgError:
				return wire.DecodeError(r.f.Payload)
			case conn.CRCEnabled() && !r.f.CRC:
				return fmt.Errorf("selectedsum: plain frame type %#x in a CRC session: %w", byte(r.f.Type), wire.ErrFrameCorrupt)
			default:
				return fmt.Errorf("selectedsum: unexpected message type %#x mid-upload", byte(r.f.Type))
			}
		default:
			return nil
		}
	}

	width := pk.CiphertextSize()
	for lo := 0; lo < n; lo += chunkSize {
		hi := lo + chunkSize
		if hi > n {
			hi = n
		}
		body := make([]byte, 0, (hi-lo)*width)
		for i := lo; i < hi; i++ {
			ct, err := src.EncryptAt(i)
			if err != nil {
				return nil, fmt.Errorf("selectedsum: encrypting entry %d: %w", i, err)
			}
			body, err = appendCiphertext(body, ct, width)
			if err != nil {
				return nil, err
			}
		}
		if err := early(); err != nil {
			return nil, err
		}
		chunk := &wire.IndexChunk{Offset: uint64(lo), Ciphertexts: body, Width: width}
		if err := conn.Send(wire.MsgIndexChunk, chunk.Encode()); err != nil {
			// The write failed because the server hung up; prefer its
			// explanation if one arrives promptly (it was usually sent
			// well before the hangup).
			select {
			case r := <-respc:
				if r.err == nil && r.f.Type == wire.MsgError {
					return nil, wire.DecodeError(r.f.Payload)
				}
			case <-time.After(200 * time.Millisecond):
			}
			return nil, fmt.Errorf("selectedsum: sending chunk at %d: %w", lo, err)
		}
	}
	if err := conn.Send(wire.MsgDone, nil); err != nil {
		select {
		case r := <-respc:
			if r.err == nil && r.f.Type == wire.MsgError {
				return nil, wire.DecodeError(r.f.Payload)
			}
		case <-time.After(200 * time.Millisecond):
		}
		return nil, fmt.Errorf("selectedsum: sending done: %w", err)
	}

	want := cols.Count()
	sums := make([]*big.Int, 0, want)
	for i := 0; i < want; i++ {
		var r response
		if i == 0 {
			r = <-respc
		} else {
			r.f, r.err = conn.Recv()
		}
		if r.err != nil {
			return nil, fmt.Errorf("selectedsum: reading sum %d/%d: %w", i+1, want, r.err)
		}
		switch r.f.Type {
		case wire.MsgSum:
			if conn.CRCEnabled() && !r.f.CRC {
				return nil, fmt.Errorf("selectedsum: plain frame type %#x in a CRC session: %w", byte(r.f.Type), wire.ErrFrameCorrupt)
			}
			ct, err := pk.ParseCiphertext(r.f.Payload)
			if err != nil {
				return nil, fmt.Errorf("selectedsum: parsing sum ciphertext: %w", err)
			}
			sum, err := sk.Decrypt(ct)
			if err != nil {
				return nil, fmt.Errorf("selectedsum: decrypting sum: %w", err)
			}
			sums = append(sums, sum)
		case wire.MsgError:
			return nil, wire.DecodeError(r.f.Payload)
		default:
			if conn.CRCEnabled() && !r.f.CRC {
				// Impossible plain type in a CRC session: a corrupted header,
				// classified retryable rather than protocol-fatal.
				return nil, fmt.Errorf("selectedsum: plain frame type %#x in a CRC session: %w", byte(r.f.Type), wire.ErrFrameCorrupt)
			}
			return nil, fmt.Errorf("selectedsum: expected sum, got message type %#x", byte(r.f.Type))
		}
	}
	return sums, nil
}
