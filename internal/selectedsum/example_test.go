package selectedsum_test

import (
	"crypto/rand"
	"fmt"
	"log"

	"privstats/internal/database"
	"privstats/internal/homomorphic"
	"privstats/internal/netsim"
	"privstats/internal/paillier"
	"privstats/internal/selectedsum"
)

// ExampleRun shows the complete private selected-sum protocol in process:
// the server holds the table, the client holds the selection, and only the
// sum crosses the trust boundary in the clear.
func ExampleRun() {
	// Server side: a table of values.
	table := database.New([]uint32{10, 20, 30, 40, 50})

	// Client side: a key pair and a secret selection (rows 1 and 3).
	key, err := paillier.KeyGen(rand.Reader, 128) // demo size; use >= 2048 in production
	if err != nil {
		log.Fatal(err)
	}
	sel, err := database.NewSelection(5)
	if err != nil {
		log.Fatal(err)
	}
	sel.Set(1)
	sel.Set(3)

	res, err := selectedsum.Run(
		paillier.SchemeKey{SK: key},
		table, sel,
		selectedsum.Options{Link: netsim.ShortDistance},
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("private sum:", res.Sum)
	// Output: private sum: 60
}

// ExampleRunMulti splits one query across three cooperating clients; the
// server's blinding keeps each partial sum hidden (paper §3.5).
func ExampleRunMulti() {
	table := database.New([]uint32{1, 2, 3, 4, 5, 6, 7, 8, 9})
	sel, err := database.GenerateSelection(9, 9, database.PatternPrefix, 0)
	if err != nil {
		log.Fatal(err)
	}
	newKey := func() (homomorphic.PrivateKey, error) {
		sk, err := paillier.KeyGen(rand.Reader, 256)
		if err != nil {
			return nil, err
		}
		return paillier.SchemeKey{SK: sk}, nil
	}
	res, err := selectedsum.RunMulti(newKey, table, sel, selectedsum.MultiOptions{
		Link:    netsim.ShortDistance,
		Clients: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("total across 3 clients:", res.Sum)
	// Output: total across 3 clients: 45
}
