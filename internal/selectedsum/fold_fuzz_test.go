package selectedsum

import (
	"math/big"
	"testing"

	"privstats/internal/database"
	"privstats/internal/homomorphic"
)

// FuzzFoldEquivalence is the differential oracle for the server's two fold
// paths: random workloads must decrypt to the same sum through the naive
// ScalarMul+Add loop (capability stripped via WithoutMultiScalarFold) and
// through the bucket multi-exponentiation fold, sequentially and at
// AbsorbParallel worker counts 2 and 4. Row counts span both sides of
// foldMinRows so the fuzzer exercises the threshold crossing.
func FuzzFoldEquivalence(f *testing.F) {
	f.Add([]byte{3})
	f.Add([]byte{17, 0xff, 0x00, 0x80, 0x7f})
	f.Add([]byte{63, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13})
	f.Add([]byte{16, 0xde, 0xad, 0xbe, 0xef, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			t.Skip()
		}
		count := 1 + int(data[0])%(4*foldMinRows)
		byteAt := func(i int) byte {
			return data[i%len(data)] ^ byte(i*151) // decorrelate reused bytes
		}
		values := make([]uint32, count)
		sel, err := database.NewSelection(count)
		if err != nil {
			t.Fatal(err)
		}
		want := new(big.Int)
		for i := range values {
			v := uint32(byteAt(4*i)) | uint32(byteAt(4*i+1))<<8 |
				uint32(byteAt(4*i+2))<<16 | uint32(byteAt(4*i+3))<<24
			values[i] = v
			if byteAt(4*count+i)&1 == 1 {
				sel.Set(i)
				want.Add(want, new(big.Int).SetUint64(uint64(v)))
			}
		}
		table := database.New(values)
		sk := testKey(t)
		pk := sk.PublicKey()
		width := pk.CiphertextSize()
		body, err := EncryptRange(Online{PK: pk}, sel, 0, count, width)
		if err != nil {
			t.Fatal(err)
		}
		chunk := decodeChunk(t, body, 0, width)

		run := func(key homomorphic.PublicKey, workers int) *big.Int {
			srv, err := NewColumnSession(key, table.Column(), uint64(count))
			if err != nil {
				t.Fatal(err)
			}
			if workers > 1 {
				err = srv.AbsorbParallel(chunk, workers)
			} else {
				err = srv.Absorb(chunk)
			}
			if err != nil {
				t.Fatal(err)
			}
			ct, err := srv.Finalize(nil)
			if err != nil {
				t.Fatal(err)
			}
			m, err := sk.Decrypt(ct)
			if err != nil {
				t.Fatal(err)
			}
			return m
		}

		naive := run(homomorphic.WithoutMultiScalarFold(pk), 1)
		if naive.Cmp(want) != 0 {
			t.Fatalf("count=%d: naive fold decrypts to %v, direct sum is %v", count, naive, want)
		}
		for _, workers := range []int{1, 2, 4} {
			if got := run(pk, workers); got.Cmp(naive) != 0 {
				t.Fatalf("count=%d workers=%d: fast fold decrypts to %v, naive to %v", count, workers, got, naive)
			}
		}
	})
}
