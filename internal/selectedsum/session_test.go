package selectedsum

import (
	"errors"
	"math/big"
	"strconv"
	"strings"
	"testing"

	"privstats/internal/database"
	"privstats/internal/homomorphic"
	"privstats/internal/wire"
)

// decodeChunk builds a wire.IndexChunk from raw ciphertext bytes.
func decodeChunk(t testing.TB, body []byte, offset uint64, width int) *wire.IndexChunk {
	t.Helper()
	c := &wire.IndexChunk{Offset: offset, Ciphertexts: body, Width: width}
	decoded, err := wire.DecodeIndexChunk(c.Encode(), width)
	if err != nil {
		t.Fatal(err)
	}
	return decoded
}

func TestServerSessionValidation(t *testing.T) {
	sk := testKey(t)
	pk := sk.PublicKey()
	table := database.New([]uint32{1, 2, 3})

	if _, err := NewServerSession(nil, table, 3); err == nil {
		t.Error("nil key should fail")
	}
	if _, err := NewServerSession(pk, nil, 3); err == nil {
		t.Error("nil table should fail")
	}
	if _, err := NewServerSession(pk, table, 4); !errors.Is(err, ErrVectorLength) {
		t.Errorf("length mismatch: err = %v", err)
	}
}

func TestServerSessionOutOfOrderChunk(t *testing.T) {
	sk := testKey(t)
	pk := sk.PublicKey()
	table := database.New([]uint32{5, 6, 7, 8})
	srv, err := NewServerSession(pk, table, 4)
	if err != nil {
		t.Fatal(err)
	}
	sel, _ := database.NewSelection(4)
	width := pk.CiphertextSize()
	body, err := EncryptRange(Online{PK: pk}, sel, 0, 2, width)
	if err != nil {
		t.Fatal(err)
	}
	// Wrong offset: expects 0.
	if err := srv.Absorb(decodeChunk(t, body, 2, width)); !errors.Is(err, ErrChunkOutOfOrder) {
		t.Errorf("err = %v, want ErrChunkOutOfOrder", err)
	}
	// Correct offset works.
	if err := srv.Absorb(decodeChunk(t, body, 0, width)); err != nil {
		t.Fatal(err)
	}
	if srv.Absorbed() != 2 {
		t.Errorf("absorbed = %d", srv.Absorbed())
	}
	// Replay of the same offset is out of order now.
	if err := srv.Absorb(decodeChunk(t, body, 0, width)); !errors.Is(err, ErrChunkOutOfOrder) {
		t.Errorf("replay: err = %v", err)
	}
}

func TestServerSessionOverlongChunk(t *testing.T) {
	sk := testKey(t)
	pk := sk.PublicKey()
	table := database.New([]uint32{5, 6})
	srv, _ := NewServerSession(pk, table, 2)
	sel, _ := database.NewSelection(3)
	body, err := EncryptRange(Online{PK: pk}, sel, 0, 3, pk.CiphertextSize())
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Absorb(decodeChunk(t, body, 0, pk.CiphertextSize())); !errors.Is(err, ErrVectorLength) {
		t.Errorf("3 ciphertexts into 2-row table: err = %v", err)
	}
}

func TestServerSessionMalformedCiphertext(t *testing.T) {
	sk := testKey(t)
	pk := sk.PublicKey()
	table := database.New([]uint32{9})
	srv, _ := NewServerSession(pk, table, 1)
	width := pk.CiphertextSize()
	// All-zero bytes is not a valid ciphertext (0 ∉ (0, N²)).
	if err := srv.Absorb(decodeChunk(t, make([]byte, width), 0, width)); err == nil {
		t.Error("zero ciphertext should be rejected")
	}
}

func TestServerSessionIncompleteFinalize(t *testing.T) {
	sk := testKey(t)
	pk := sk.PublicKey()
	table := database.New([]uint32{1, 2, 3})
	srv, _ := NewServerSession(pk, table, 3)
	if _, err := srv.Finalize(nil); !errors.Is(err, ErrIncomplete) {
		t.Errorf("err = %v, want ErrIncomplete", err)
	}
}

func TestServerSessionLifecycle(t *testing.T) {
	sk := testKey(t)
	pk := sk.PublicKey()
	table := database.New([]uint32{1, 2})
	srv, _ := NewServerSession(pk, table, 2)
	sel, _ := database.NewSelection(2)
	sel.Set(1)
	width := pk.CiphertextSize()
	body, err := EncryptRange(Online{PK: pk}, sel, 0, 2, width)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Absorb(decodeChunk(t, body, 0, width)); err != nil {
		t.Fatal(err)
	}
	ct, err := srv.Finalize(nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sk.Decrypt(ct)
	if err != nil || got.Int64() != 2 {
		t.Errorf("sum = %v (err %v), want 2", got, err)
	}
	// After finalize: both absorb and finalize must fail.
	if err := srv.Absorb(decodeChunk(t, body, 2, width)); err == nil {
		t.Error("absorb after finalize should fail")
	}
	if _, err := srv.Finalize(nil); err == nil {
		t.Error("double finalize should fail")
	}
}

func TestFinalizeWithBlinding(t *testing.T) {
	sk := testKey(t)
	pk := sk.PublicKey()
	table := database.New([]uint32{10, 20, 30})
	sel, _ := database.NewSelection(3)
	sel.Set(0)
	sel.Set(2) // true sum 40

	srv, _ := NewServerSession(pk, table, 3)
	width := pk.CiphertextSize()
	body, err := EncryptRange(Online{PK: pk}, sel, 0, 3, width)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Absorb(decodeChunk(t, body, 0, width)); err != nil {
		t.Fatal(err)
	}
	blind := big.NewInt(1_000_000)
	ct, err := srv.Finalize(blind)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sk.Decrypt(ct)
	if err != nil {
		t.Fatal(err)
	}
	if got.Int64() != 1_000_040 {
		t.Errorf("blinded sum = %v, want 1000040", got)
	}
}

// scalarMulFailKey delegates to a real key but fails every ScalarMul,
// forcing the per-row error path. Embedding the interface (not a concrete
// type) promotes only the base method set, so the session's
// MultiScalarFolder probe fails and the naive loop runs.
type scalarMulFailKey struct{ homomorphic.PublicKey }

func (scalarMulFailKey) ScalarMul(homomorphic.Ciphertext, *big.Int) (homomorphic.Ciphertext, error) {
	return nil, errors.New("forced scalarmul failure")
}

// addFailKey is scalarMulFailKey's sibling for the Add error path.
type addFailKey struct{ homomorphic.PublicKey }

func (addFailKey) Add(homomorphic.Ciphertext, homomorphic.Ciphertext) (homomorphic.Ciphertext, error) {
	return nil, errors.New("forced add failure")
}

// TestAbsorbErrorReportsGlobalIndex pins the regression where per-row error
// messages computed the failing row as int(chunk.Offset)+i — truncating on
// 32-bit platforms and, before that, reporting the chunk-local index. A
// shard session based beyond 2^33 must report the full global uint64 index.
func TestAbsorbErrorReportsGlobalIndex(t *testing.T) {
	sk := testKey(t)
	pk := sk.PublicKey()
	const base = uint64(1) << 33
	table := database.New([]uint32{0, 7, 0, 0, 0, 3, 0, 0})
	width := pk.CiphertextSize()
	sel, _ := database.NewSelection(8)
	body, err := EncryptRange(Online{PK: pk}, sel, 0, 8, width)
	if err != nil {
		t.Fatal(err)
	}
	chunk := decodeChunk(t, body, base, width)

	// First nonzero row is i=1, so the failing global index is base+1.
	wantIdx := strconv.FormatUint(base+1, 10)

	srv, err := NewShardSession(scalarMulFailKey{pk}, table.Column(), 8, base)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Absorb(chunk); err == nil || !strings.Contains(err.Error(), wantIdx) {
		t.Errorf("Absorb scaling error %q does not name global index %s", err, wantIdx)
	}

	srv, err = NewShardSession(scalarMulFailKey{pk}, table.Column(), 8, base)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.AbsorbParallel(chunk, 2); err == nil || !strings.Contains(err.Error(), wantIdx) {
		t.Errorf("AbsorbParallel scaling error %q does not name global index %s", err, wantIdx)
	}

	// The Add path fails on the second nonzero row (i=5): the first becomes
	// the accumulator, the second triggers the fold error.
	wantIdx = strconv.FormatUint(base+5, 10)
	srv, err = NewShardSession(addFailKey{pk}, table.Column(), 8, base)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Absorb(chunk); err == nil || !strings.Contains(err.Error(), wantIdx) {
		t.Errorf("Absorb folding error %q does not name global index %s", err, wantIdx)
	}
}

func TestEncryptRangeValidation(t *testing.T) {
	sk := testKey(t)
	pk := sk.PublicKey()
	sel, _ := database.NewSelection(5)
	width := pk.CiphertextSize()
	if _, err := EncryptRange(Online{PK: pk}, sel, -1, 3, width); err == nil {
		t.Error("negative lo should fail")
	}
	if _, err := EncryptRange(Online{PK: pk}, sel, 3, 2, width); err == nil {
		t.Error("hi < lo should fail")
	}
	if _, err := EncryptRange(Online{PK: pk}, sel, 0, 6, width); err == nil {
		t.Error("hi > len should fail")
	}
	// Empty range is fine.
	out, err := EncryptRange(Online{PK: pk}, sel, 2, 2, width)
	if err != nil || len(out) != 0 {
		t.Errorf("empty range: %v, %d bytes", err, len(out))
	}
}

func TestOnlineEncryptorRejectsBadBit(t *testing.T) {
	sk := testKey(t)
	if _, err := (Online{PK: sk.PublicKey()}).EncryptBit(2); err == nil {
		t.Error("bit 2 should fail")
	}
}
