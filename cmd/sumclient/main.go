// Command sumclient runs the client side of the private selected-sum
// protocol against a sumserver. It selects rows of the remote table
// (without revealing which), retrieves their sum, and prints per-phase
// timings — the same four components the paper's figures report.
//
// Usage:
//
//	sumclient -server localhost:7001 -n 100000 -select 0.5
//	sumclient -server localhost:7001 -n 100000 -select 0.5 -chunk 100 -preprocess
//	sumclient -server localhost:7001 -n 100000 -indices 3,17,99
//
// Sessions run through the production client runtime (internal/cluster):
// -timeout bounds dial and per-frame IO, and failures are retried -retries
// times with exponential -backoff. -server takes a comma-separated failover
// list — the first address is preferred, later ones are tried when it is
// down or busy:
//
//	sumclient -server proxy1:7000,proxy2:7000 -n 100000 -timeout 10s -retries 3
//
// With -jobd, sumclient talks to a sumjobd gateway instead of running the
// protocol itself: it submits a declarative JobSpec (inline JSON or @file),
// polls the job to completion, and prints the result document:
//
//	sumclient -jobd http://localhost:7080 -tenant acme -job '{"op":"variance","selection":{"all":true}}'
//	sumclient -jobd http://localhost:7080 -tenant acme -job @spec.json
package main

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"math/big"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"privstats/internal/cluster"
	"privstats/internal/database"
	"privstats/internal/homomorphic"
	"privstats/internal/jobs"
	"privstats/internal/paillier"
	"privstats/internal/selectedsum"
	"privstats/internal/stock"
	"privstats/internal/trace"
)

// errStockConflict marks a flag combination that mixes -stock with another
// preprocessing source; main rejects it at startup (a structured error and
// usage) instead of letting the modes fight mid-session.
var errStockConflict = errors.New("pick one preprocessing source")

// validateStockFlags rejects -stock combined with an incompatible mode: the
// local sources (-preprocess, -store) would shadow the daemon entirely, and
// -jobd never runs the protocol in this process at all.
func validateStockFlags(stockAddr string, preprocess bool, storePath, jobdURL string) error {
	if stockAddr == "" {
		return nil
	}
	switch {
	case preprocess:
		return fmt.Errorf("-stock and -preprocess: %w", errStockConflict)
	case storePath != "":
		return fmt.Errorf("-stock and -store: %w", errStockConflict)
	case jobdURL != "":
		return fmt.Errorf("-stock and -jobd: %w (the gateway encrypts; give sumjobd the -stock flag instead)", errStockConflict)
	}
	return nil
}

func main() {
	server := flag.String("server", "localhost:7001", "server address, or a comma-separated failover list (first preferred)")
	n := flag.Int("n", 0, "size of the remote table (the client must know the schema)")
	selectFrac := flag.Float64("select", 0.5, "fraction of rows to select at random")
	indices := flag.String("indices", "", "comma-separated explicit row indices (overrides -select)")
	seed := flag.Int64("seed", 7, "seed for random selection")
	keyPath := flag.String("key", "", "private key file from keygen (generated fresh when empty)")
	keyBits := flag.Int("bits", 512, "key size when generating a fresh key")
	chunk := flag.Int("chunk", 0, "batch the index vector in chunks of this size (0 = single chunk)")
	preprocess := flag.Bool("preprocess", false, "precompute all index-bit encryptions before connecting (paper §3.3)")
	storePath := flag.String("store", "", "load preprocessed encryptions from this file (from keygen -store; requires -key)")
	stockAddr := flag.String("stock", "", "prefetch preprocessed encryptions from a stockd daemon at this address")
	timeout := flag.Duration("timeout", cluster.DefaultIOTimeout, "dial and per-frame IO deadline (0 = runtime default)")
	retries := flag.Int("retries", cluster.DefaultRetries, "extra attempts after the first, spread across the -server list")
	backoff := flag.Duration("backoff", cluster.DefaultBackoff, "base sleep before a retry, doubled each attempt and jittered")
	dialHedge := flag.Duration("dial-hedge-after", 0, "launch a second dial if the first is still pending after this delay (0 = off)")
	useCRC := flag.Bool("crc", false, "request CRC32 frame trailers (old servers degrade to plain frames)")
	traceReq := flag.Bool("trace", false, "tag the session with a trace ID and print it; servers with -trace-ring expose the phases at /traces?id=")
	jobdURL := flag.String("jobd", "", "submit to a sumjobd gateway at this base URL instead of running the protocol directly")
	tenant := flag.String("tenant", "", "tenant name for -jobd submissions (the X-Tenant header)")
	jobSpec := flag.String("job", "", "JobSpec for -jobd: inline JSON, or @path to read a file")
	pollEvery := flag.Duration("poll", 200*time.Millisecond, "status poll interval for -jobd submissions")
	flag.Parse()

	if err := validateStockFlags(*stockAddr, *preprocess, *storePath, *jobdURL); err != nil {
		fmt.Fprintf(os.Stderr, "sumclient: %v\n", err)
		flag.Usage()
		os.Exit(2)
	}

	if *jobdURL != "" {
		if err := runJob(*jobdURL, *tenant, *jobSpec, *pollEvery); err != nil {
			log.Fatalf("sumclient: %v", err)
		}
		return
	}

	if *n <= 0 {
		fmt.Fprintln(os.Stderr, "sumclient: -n (remote table size) is required")
		flag.Usage()
		os.Exit(2)
	}
	rt := cluster.ClientConfig{
		DialTimeout:    *timeout,
		IOTimeout:      *timeout,
		Retries:        *retries,
		Backoff:        *backoff,
		DialHedgeAfter: *dialHedge,
		UseCRC:         *useCRC,
	}
	if err := run(*server, *n, *selectFrac, *indices, *seed, *keyPath, *keyBits, *chunk, *preprocess, *storePath, *stockAddr, rt, *traceReq); err != nil {
		log.Fatalf("sumclient: %v", err)
	}
}

func run(server string, n int, selectFrac float64, indices string, seed int64, keyPath string, keyBits, chunk int, preprocess bool, storePath, stockAddr string, rt cluster.ClientConfig, traceReq bool) error {
	sk, rawSK, err := loadKey(keyPath, keyBits)
	if err != nil {
		return err
	}

	sel, err := buildSelection(n, selectFrac, indices, seed)
	if err != nil {
		return err
	}
	fmt.Printf("selecting %d of %d rows\n", sel.Count(), n)

	var pool homomorphic.EncryptorPool
	var remote *stock.RemoteSource
	if stockAddr != "" {
		ones := sel.Count()
		remote, err = stock.NewRemoteSource(stock.RemoteSourceConfig{
			Addr:        stockAddr,
			Key:         rawSK.Public(),
			TargetZeros: n - ones,
			TargetOnes:  ones,
			DialTimeout: rt.DialTimeout,
			IOTimeout:   rt.IOTimeout,
			UseCRC:      rt.UseCRC,
		})
		if err != nil {
			return err
		}
		defer remote.Close()
		start := time.Now()
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
		err := remote.Prime(ctx)
		cancel()
		if err != nil {
			// A short or absent prefetch is not fatal: the missing bits are
			// encrypted online and counted as fallbacks below.
			fmt.Printf("stock prefetch incomplete (%v); missing bits will be encrypted online\n", err)
		} else {
			fmt.Printf("stock prefetch: %v for %d encryptions from %s\n",
				time.Since(start).Round(time.Millisecond), n, stockAddr)
		}
		pool = remote
	} else if storePath != "" {
		store, err := paillier.LoadBitStore(storePath, rawSK.Public())
		if err != nil {
			return fmt.Errorf("loading preprocessed store: %w", err)
		}
		fmt.Printf("loaded preprocessed store: %d zeros, %d ones\n",
			store.Remaining(0), store.Remaining(1))
		pool = paillier.SchemeBitStore{Store: store}
	} else if preprocess {
		// Client-local preprocessing happens on the key owner's device, so
		// the fill takes the CRT fast path instead of the public r^N route.
		store := paillier.NewBitStoreOwner(rawSK)
		start := time.Now()
		ones := sel.Count()
		if err := store.FillParallel(n-ones, ones, 4); err != nil {
			return fmt.Errorf("preprocessing: %w", err)
		}
		fmt.Printf("offline preprocessing: %v for %d encryptions\n",
			time.Since(start).Round(time.Millisecond), n)
		pool = paillier.SchemeBitStore{Store: store}
	}

	backends := splitAddrs(server)
	client := cluster.NewClient(rt)

	var traceID trace.ID
	if traceReq {
		traceID = trace.NewID()
		fmt.Printf("trace id:     %s\n", traceID)
	}

	var sum *big.Int
	var out, in int64
	start := time.Now()
	served, err := client.Do(context.Background(), backends, func(s *cluster.Session) error {
		if traceReq {
			// Arm the ID on the connection so QueryVector's hello carries
			// it; the retry runtime may call us on a fresh connection, and
			// each attempt reuses the same ID — it names the query, not the
			// connection.
			s.Conn.SetTraceID(traceID)
		}
		got, err := selectedsum.Query(s.Conn, sk, sel, chunk, pool)
		if err != nil {
			return err
		}
		sum = got
		out, in, _, _ = s.Conn.Meter.Snapshot()
		return nil
	})
	if err != nil {
		return err
	}
	online := time.Since(start)

	fmt.Printf("selected sum: %v\n", sum)
	fmt.Printf("online time:  %v\n", online.Round(time.Millisecond))
	fmt.Printf("traffic:      %d bytes up, %d bytes down\n", out, in)
	if remote != nil {
		fmt.Printf("stock:        %d online fallbacks\n", remote.OnlineFallbacks())
	}
	if cs := client.Metrics().Snapshot(); cs.Retries+cs.Failovers > 0 {
		fmt.Printf("resilience:   %d retries, %d failovers (served by %s)\n", cs.Retries, cs.Failovers, served)
	}
	return nil
}

// runJob submits a JobSpec to a sumjobd gateway and polls it to completion.
// The spec travels in the clear to the gateway — the gateway is the analyst
// side and does the encrypting — so this path needs no key material.
func runJob(baseURL, tenant, spec string, pollEvery time.Duration) error {
	if tenant == "" {
		return fmt.Errorf("-tenant is required with -jobd")
	}
	if spec == "" {
		return fmt.Errorf("-job is required with -jobd (inline JSON or @file)")
	}
	body := []byte(spec)
	if strings.HasPrefix(spec, "@") {
		data, err := os.ReadFile(spec[1:])
		if err != nil {
			return fmt.Errorf("reading -job file: %w", err)
		}
		body = data
	}
	baseURL = strings.TrimRight(baseURL, "/")

	req, err := http.NewRequest(http.MethodPost, baseURL+"/jobs", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set(jobs.TenantHeader, tenant)
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return fmt.Errorf("submitting job: %w", err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("gateway rejected job (HTTP %d): %s", resp.StatusCode, strings.TrimSpace(string(raw)))
	}
	var job jobs.Job
	if err := json.Unmarshal(raw, &job); err != nil {
		return fmt.Errorf("parsing submit response: %w", err)
	}
	fmt.Printf("job id:   %s\n", job.ID)
	fmt.Printf("trace:    %s/traces?id=%s\n", baseURL, job.ID)

	start := time.Now()
	for job.State == jobs.StateQueued || job.State == jobs.StateRunning {
		time.Sleep(pollEvery)
		resp, err := http.Get(baseURL + "/jobs/" + job.ID)
		if err != nil {
			return fmt.Errorf("polling job: %w", err)
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("job %s lost (HTTP %d): %s", job.ID, resp.StatusCode, strings.TrimSpace(string(raw)))
		}
		if err := json.Unmarshal(raw, &job); err != nil {
			return fmt.Errorf("parsing status: %w", err)
		}
	}
	fmt.Printf("state:    %s after %v\n", job.State, time.Since(start).Round(time.Millisecond))
	if job.State == jobs.StateFailed {
		return fmt.Errorf("job failed: %s", job.Error)
	}
	out, err := json.MarshalIndent(job.Result, "", "  ")
	if err != nil {
		return err
	}
	fmt.Printf("result:   %s\n", out)
	return nil
}

// splitAddrs parses the -server failover list.
func splitAddrs(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

func loadKey(path string, bits int) (homomorphic.PrivateKey, *paillier.PrivateKey, error) {
	if path == "" {
		start := time.Now()
		sk, err := paillier.KeyGen(rand.Reader, bits)
		if err != nil {
			return nil, nil, err
		}
		fmt.Printf("generated %d-bit key in %v (use keygen + -key to reuse one)\n",
			bits, time.Since(start).Round(time.Millisecond))
		return paillier.SchemeKey{SK: sk}, sk, nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, fmt.Errorf("reading key: %w", err)
	}
	var sk paillier.PrivateKey
	if err := sk.UnmarshalBinary(data); err != nil {
		return nil, nil, fmt.Errorf("parsing key: %w", err)
	}
	return paillier.SchemeKey{SK: &sk}, &sk, nil
}

func buildSelection(n int, frac float64, indices string, seed int64) (*database.Selection, error) {
	if indices != "" {
		sel, err := database.NewSelection(n)
		if err != nil {
			return nil, err
		}
		for _, part := range strings.Split(indices, ",") {
			i, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				return nil, fmt.Errorf("bad index %q: %w", part, err)
			}
			if i < 0 || i >= n {
				return nil, fmt.Errorf("index %d outside [0,%d)", i, n)
			}
			sel.Set(i)
		}
		return sel, nil
	}
	if frac <= 0 || frac > 1 {
		return nil, fmt.Errorf("selection fraction %v outside (0,1]", frac)
	}
	return database.GenerateSelection(n, int(float64(n)*frac), database.PatternRandom, seed)
}
