package main

import (
	"crypto/rand"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"privstats/internal/paillier"
)

func TestBuildSelectionFromIndices(t *testing.T) {
	sel, err := buildSelection(10, 0.5, "0, 3,9", 1)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Count() != 3 || sel.Bit(0) != 1 || sel.Bit(3) != 1 || sel.Bit(9) != 1 {
		t.Errorf("selection bits wrong: count=%d", sel.Count())
	}
}

func TestBuildSelectionFromFraction(t *testing.T) {
	sel, err := buildSelection(100, 0.25, "", 1)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Count() != 25 {
		t.Errorf("count = %d, want 25", sel.Count())
	}
	// Deterministic per seed.
	sel2, err := buildSelection(100, 0.25, "", 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if sel.Bit(i) != sel2.Bit(i) {
			t.Fatal("selection not deterministic")
		}
	}
}

func TestBuildSelectionErrors(t *testing.T) {
	if _, err := buildSelection(10, 0.5, "abc", 1); err == nil {
		t.Error("non-numeric index should fail")
	}
	if _, err := buildSelection(10, 0.5, "10", 1); err == nil {
		t.Error("out-of-range index should fail")
	}
	if _, err := buildSelection(10, 0.5, "-1", 1); err == nil {
		t.Error("negative index should fail")
	}
	if _, err := buildSelection(10, 0, "", 1); err == nil {
		t.Error("zero fraction should fail")
	}
	if _, err := buildSelection(10, 1.5, "", 1); err == nil {
		t.Error("fraction > 1 should fail")
	}
}

func TestLoadKeyFromFile(t *testing.T) {
	sk, err := paillier.KeyGen(rand.Reader, 128)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := sk.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "k.key")
	if err := os.WriteFile(path, raw, 0o600); err != nil {
		t.Fatal(err)
	}
	hk, rawSK, err := loadKey(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rawSK.N.Cmp(sk.N) != 0 {
		t.Error("loaded key differs")
	}
	if hk == nil {
		t.Error("nil homomorphic key")
	}
}

func TestLoadKeyErrors(t *testing.T) {
	if _, _, err := loadKey(filepath.Join(t.TempDir(), "missing"), 0); err == nil {
		t.Error("missing file should fail")
	}
	path := filepath.Join(t.TempDir(), "junk.key")
	if err := os.WriteFile(path, []byte("not a key"), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, _, err := loadKey(path, 0); err == nil {
		t.Error("corrupt key should fail")
	}
}

func TestLoadKeyGeneratesFresh(t *testing.T) {
	hk, rawSK, err := loadKey("", 128)
	if err != nil {
		t.Fatal(err)
	}
	if hk == nil || rawSK == nil || rawSK.N.BitLen() != 128 {
		t.Errorf("fresh key generation broken")
	}
}

func TestValidateStockFlags(t *testing.T) {
	cases := []struct {
		name               string
		stock              string
		preprocess         bool
		storePath, jobdURL string
		wantConflict       bool
	}{
		{name: "no stock", stock: ""},
		{name: "no stock with preprocess", stock: "", preprocess: true},
		{name: "stock alone", stock: "localhost:7005"},
		{name: "stock with preprocess", stock: "localhost:7005", preprocess: true, wantConflict: true},
		{name: "stock with store", stock: "localhost:7005", storePath: "/tmp/x.psbs", wantConflict: true},
		{name: "stock with jobd", stock: "localhost:7005", jobdURL: "http://localhost:7006", wantConflict: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := validateStockFlags(tc.stock, tc.preprocess, tc.storePath, tc.jobdURL)
			if tc.wantConflict {
				if !errors.Is(err, errStockConflict) {
					t.Fatalf("err = %v, want errStockConflict", err)
				}
			} else if err != nil {
				t.Fatalf("unexpected err: %v", err)
			}
		})
	}
}
