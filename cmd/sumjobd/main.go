// Command sumjobd runs the declarative multi-tenant stats-job gateway: an
// HTTP daemon that accepts JSON JobSpecs (sum, mean, variance, covariance,
// groupby over a selection), plans each onto private selected-sum queries,
// and executes them against a sumproxy or sumserver through the production
// client runtime (retry, failover, hedging). Per-tenant token-bucket quotas
// and weighted fair-share admission keep one saturating analyst from
// starving the rest.
//
// The gateway is the analyst side of the protocol: it holds the private key
// and encrypts every selection before anything leaves the process, so the
// serving infrastructure only ever sees ciphertexts. Job statuses carry
// plaintext aggregates the submitting analyst is entitled to.
//
// Usage:
//
//	sumjobd -backends localhost:7000 -rows 100000 -tenants tenants.json
//	sumjobd -backends proxy1:7000,proxy2:7000 -rows 100000 -tenants tenants.json -key analyst.key -slots 4
//
// Tenants are a JSON array: [{"name":"acme","weight":2,"rate":5,"burst":10,"max_queued":16}, ...].
//
// Endpoints on -listen: POST /jobs (submit, X-Tenant header), GET /jobs/{id}
// (status/result), GET /jobs (list), /metrics (Prometheus, per-tenant job
// counters), /traces (gateway-side trace ring), /debug/pprof with -pprof.
package main

import (
	"context"
	"crypto/rand"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"privstats/internal/cluster"
	"privstats/internal/homomorphic"
	"privstats/internal/jobs"
	"privstats/internal/metrics"
	"privstats/internal/paillier"
	"privstats/internal/server"
	"privstats/internal/stock"
	"privstats/internal/trace"

	// Accepted cryptosystems register themselves with the scheme registry.
	_ "privstats/internal/crypto/dj"
	_ "privstats/internal/crypto/elgamal"
)

var (
	errNoBackends = errors.New("sumjobd: -backends is required (comma-separated failover list)")
	errNoTenants  = errors.New("sumjobd: -tenants is required (JSON array of tenant policies)")
	errNoRows     = errors.New("sumjobd: -rows (table size) must be positive")
)

// jobdConfig is everything buildGateway validates before a socket opens.
type jobdConfig struct {
	backends   string
	rows       int
	tenantPath string
	keyPath    string
	keyBits    int
	slots      int
	maxJobs    int
	jobTimeout time.Duration
	storeDir   string
	chunk      int
	traceRing  int
	stockAddr  string
	stockZeros int
	stockOnes  int
	client     cluster.ClientConfig
}

// buildGateway validates the whole configuration — backend list, table
// size, tenant policy file (non-positive weights/rates/bursts are rejected
// by the loader), key material, and knob signs — and assembles the gateway.
// Every operator mistake surfaces here as a clear error before any socket
// is opened.
func buildGateway(cfg jobdConfig) (*jobs.Gateway, *cluster.Client, *trace.Recorder, *stock.RemoteSource, error) {
	backends := splitAddrs(cfg.backends)
	if len(backends) == 0 {
		return nil, nil, nil, nil, errNoBackends
	}
	if cfg.rows <= 0 {
		return nil, nil, nil, nil, errNoRows
	}
	if strings.TrimSpace(cfg.tenantPath) == "" {
		return nil, nil, nil, nil, errNoTenants
	}
	tenants, err := jobs.LoadTenants(cfg.tenantPath)
	if err != nil {
		return nil, nil, nil, nil, fmt.Errorf("sumjobd: %w", err)
	}
	if cfg.slots <= 0 {
		return nil, nil, nil, nil, fmt.Errorf("sumjobd: -slots %d must be positive", cfg.slots)
	}
	if cfg.maxJobs < 0 || cfg.jobTimeout < 0 || cfg.chunk < 0 || cfg.traceRing < 0 {
		return nil, nil, nil, nil, errors.New("sumjobd: negative -max-jobs/-job-timeout/-chunk/-trace-ring")
	}
	key, err := loadKey(cfg.keyPath, cfg.keyBits)
	if err != nil {
		return nil, nil, nil, nil, err
	}

	client := cluster.NewClient(cfg.client)
	var recorder *trace.Recorder
	if cfg.traceRing > 0 {
		recorder = trace.NewRecorder(cfg.traceRing)
	}

	// With -stock, executor queries draw preprocessed encryptions prefetched
	// from the stock daemon; without it (or when the daemon is down) they
	// encrypt online as before.
	var remote *stock.RemoteSource
	if cfg.stockAddr != "" {
		pk, ok := key.(paillier.SchemeKey)
		if !ok {
			return nil, nil, nil, nil, fmt.Errorf("sumjobd: -stock requires a paillier key, have %q", key.PublicKey().SchemeName())
		}
		remote, err = stock.NewRemoteSource(stock.RemoteSourceConfig{
			Addr:        cfg.stockAddr,
			Key:         pk.SK.Public(),
			TargetZeros: cfg.stockZeros,
			TargetOnes:  cfg.stockOnes,
			DialTimeout: cfg.client.DialTimeout,
			IOTimeout:   cfg.client.IOTimeout,
			UseCRC:      cfg.client.UseCRC,
		})
		if err != nil {
			return nil, nil, nil, nil, fmt.Errorf("sumjobd: %w", err)
		}
	}

	exec := &jobs.Executor{
		Client:    client,
		Backends:  backends,
		Key:       key,
		ChunkSize: cfg.chunk,
		Traces:    recorder,
	}
	if remote != nil {
		exec.Pool = remote
	}
	g, err := jobs.NewGateway(jobs.GatewayConfig{
		Schema:     jobs.Schema{Rows: cfg.rows, Columns: []string{"value"}},
		Exec:       exec,
		Tenants:    tenants,
		Slots:      cfg.slots,
		MaxJobs:    cfg.maxJobs,
		JobTimeout: cfg.jobTimeout,
		StoreDir:   cfg.storeDir,
		Logf:       log.Printf,
	})
	if err != nil {
		if remote != nil {
			remote.Close()
		}
		return nil, nil, nil, nil, fmt.Errorf("sumjobd: %w", err)
	}
	return g, client, recorder, remote, nil
}

// loadKey reads the analyst key from keygen output, or generates a fresh
// one when no path is given (fine for experiments: the serving side never
// needs the private key).
func loadKey(path string, bits int) (homomorphic.PrivateKey, error) {
	if path == "" {
		sk, err := paillier.KeyGen(rand.Reader, bits)
		if err != nil {
			return nil, fmt.Errorf("sumjobd: generating key: %w", err)
		}
		return paillier.SchemeKey{SK: sk}, nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("sumjobd: reading key: %w", err)
	}
	var sk paillier.PrivateKey
	if err := sk.UnmarshalBinary(data); err != nil {
		return nil, fmt.Errorf("sumjobd: parsing key %s: %w", path, err)
	}
	return paillier.SchemeKey{SK: &sk}, nil
}

// splitAddrs parses the -backends failover list.
func splitAddrs(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

func main() {
	listen := flag.String("listen", ":7080", "HTTP address for job submission and observability")
	backendsFlag := flag.String("backends", "", "sumproxy/sumserver address list, comma-separated failover order (required)")
	rows := flag.Int("rows", 0, "rows in the served table (the gateway must know the schema; required)")
	tenantPath := flag.String("tenants", "", "tenant policy file: JSON array of {name,weight,rate,burst,max_queued} (required)")
	keyPath := flag.String("key", "", "analyst private key from keygen (generated fresh when empty)")
	keyBits := flag.Int("bits", 512, "key size when generating a fresh key")
	slots := flag.Int("slots", 2, "concurrently executing jobs, shared across tenants by weighted fair queueing")
	maxJobs := flag.Int("max-jobs", 1024, "retained job statuses; oldest finished jobs are evicted past this")
	jobTimeout := flag.Duration("job-timeout", 0, "hard cap on one job's execution (0 = none)")
	storeDir := flag.String("store", "", "crash-safe job store directory: journal every job and recover on restart (empty = memory-only)")
	chunk := flag.Int("chunk", 0, "batch the encrypted index vector in chunks of this size (0 = single chunk)")
	grace := flag.Duration("grace", 30*time.Second, "drain window for in-flight jobs on SIGINT/SIGTERM")
	timeout := flag.Duration("timeout", cluster.DefaultIOTimeout, "dial and per-frame IO deadline on backend sessions")
	retries := flag.Int("retries", cluster.DefaultRetries, "extra attempts per query after the first, spread across -backends")
	backoff := flag.Duration("backoff", cluster.DefaultBackoff, "base sleep before a retry, doubled each attempt and jittered")
	dialHedge := flag.Duration("dial-hedge-after", 0, "launch a second dial if the first is still pending after this delay (0 = off)")
	useCRC := flag.Bool("crc", false, "request CRC32 frame trailers on backend sessions")
	stockAddr := flag.String("stock", "", "prefetch preprocessed encryptions from a stockd daemon at this address")
	stockZeros := flag.Int("stock-zeros", 4096, "local depth of prefetched 0-bit encryptions with -stock")
	stockOnes := flag.Int("stock-ones", 512, "local depth of prefetched 1-bit encryptions with -stock")
	traceRing := flag.Int("trace-ring", 256, "record the last N gateway-side job traces and serve them at /traces (0 = off)")
	pprofFlag := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	flag.Parse()

	g, client, recorder, remote, err := buildGateway(jobdConfig{
		backends:   *backendsFlag,
		rows:       *rows,
		tenantPath: *tenantPath,
		keyPath:    *keyPath,
		keyBits:    *keyBits,
		slots:      *slots,
		maxJobs:    *maxJobs,
		jobTimeout: *jobTimeout,
		storeDir:   *storeDir,
		chunk:      *chunk,
		traceRing:  *traceRing,
		stockAddr:  *stockAddr,
		stockZeros: *stockZeros,
		stockOnes:  *stockOnes,
		client: cluster.ClientConfig{
			DialTimeout:    *timeout,
			IOTimeout:      *timeout,
			Retries:        *retries,
			Backoff:        *backoff,
			DialHedgeAfter: *dialHedge,
			UseCRC:         *useCRC,
		},
	})
	if err != nil {
		if errors.Is(err, errNoBackends) || errors.Is(err, errNoTenants) || errors.Is(err, errNoRows) {
			flag.Usage()
		}
		log.Fatal(err)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("sumjobd: listen: %v", err)
	}

	mux := server.StatsMux(server.StatsMuxConfig{
		Stats:  g.Metrics().Handler(),
		Prom:   metrics.PromHandlerJobs(nil, client.Metrics(), g.Metrics()),
		Traces: recorder,
		Jobs:   g.Handler(),
		Pprof:  *pprofFlag,
	})
	httpSrv := &http.Server{Handler: mux}

	sigCtx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	go func() {
		<-sigCtx.Done()
		ctx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		log.Printf("shutdown requested; draining up to %v", *grace)
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("sumjobd: forced shutdown after grace period: %v", err)
		}
	}()

	log.Printf("job gateway on http://%s/jobs (%d rows, %d slots)", ln.Addr(), *rows, *slots)
	if err := httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
		log.Fatalf("sumjobd: %v", err)
	}
	g.Close()
	if remote != nil {
		remote.Close()
	}
}
