package main

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"privstats/internal/cluster"
)

// writeTenants drops a tenant config file into the test's temp dir.
func writeTenants(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "tenants.json")
	if err := os.WriteFile(path, []byte(body), 0o600); err != nil {
		t.Fatal(err)
	}
	return path
}

const goodTenants = `[{"name":"acme","weight":2,"rate":5,"burst":10,"max_queued":16}]`

// goodConfig is a fully valid config over a small fresh key; tests mutate
// one field at a time.
func goodConfig(t *testing.T) jobdConfig {
	t.Helper()
	return jobdConfig{
		backends:   "localhost:7000",
		rows:       1000,
		tenantPath: writeTenants(t, goodTenants),
		keyBits:    256,
		slots:      2,
		client:     cluster.ClientConfig{},
	}
}

func TestBuildGatewayValid(t *testing.T) {
	g, client, _, _, err := buildGateway(goodConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if client == nil {
		t.Fatal("nil client")
	}
}

func TestBuildGatewayMissingRequireds(t *testing.T) {
	cfg := goodConfig(t)
	cfg.backends = "  , "
	if _, _, _, _, err := buildGateway(cfg); !errors.Is(err, errNoBackends) {
		t.Errorf("no backends: %v", err)
	}

	cfg = goodConfig(t)
	cfg.rows = 0
	if _, _, _, _, err := buildGateway(cfg); !errors.Is(err, errNoRows) {
		t.Errorf("zero rows: %v", err)
	}

	cfg = goodConfig(t)
	cfg.tenantPath = "   "
	if _, _, _, _, err := buildGateway(cfg); !errors.Is(err, errNoTenants) {
		t.Errorf("no tenant path: %v", err)
	}

	cfg = goodConfig(t)
	cfg.tenantPath = filepath.Join(t.TempDir(), "no-such-file.json")
	if _, _, _, _, err := buildGateway(cfg); err == nil || !strings.Contains(err.Error(), "tenant config") {
		t.Errorf("missing tenant file: %v", err)
	}
}

func TestBuildGatewayRejectsBadTenantPolicies(t *testing.T) {
	cases := []struct {
		name, body, wantSub string
	}{
		{"not json", `{`, "parsing tenant config"},
		{"empty list", `[]`, "no tenants"},
		{"zero weight", `[{"name":"a","weight":0,"rate":1,"burst":1,"max_queued":1}]`, "weight 0 must be positive"},
		{"negative weight", `[{"name":"a","weight":-3,"rate":1,"burst":1,"max_queued":1}]`, "weight -3 must be positive"},
		{"zero rate", `[{"name":"a","weight":1,"rate":0,"burst":1,"max_queued":1}]`, "rate 0 must be positive"},
		{"zero burst", `[{"name":"a","weight":1,"rate":1,"burst":0,"max_queued":1}]`, "burst 0 must be positive"},
		{"zero queue cap", `[{"name":"a","weight":1,"rate":1,"burst":1,"max_queued":0}]`, "max_queued 0 must be positive"},
		{"unnamed", `[{"weight":1,"rate":1,"burst":1,"max_queued":1}]`, "empty name"},
		{"duplicate", `[{"name":"a","weight":1,"rate":1,"burst":1,"max_queued":1},
		                {"name":"a","weight":1,"rate":1,"burst":1,"max_queued":1}]`, "duplicate tenant"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := goodConfig(t)
			cfg.tenantPath = writeTenants(t, tc.body)
			_, _, _, _, err := buildGateway(cfg)
			if err == nil {
				t.Fatalf("policy %s accepted", tc.body)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("err = %v, want substring %q", err, tc.wantSub)
			}
		})
	}
}

func TestBuildGatewayRejectsBadKnobs(t *testing.T) {
	cfg := goodConfig(t)
	cfg.slots = 0
	if _, _, _, _, err := buildGateway(cfg); err == nil || !strings.Contains(err.Error(), "-slots") {
		t.Errorf("zero slots: %v", err)
	}

	cfg = goodConfig(t)
	cfg.maxJobs = -1
	if _, _, _, _, err := buildGateway(cfg); err == nil {
		t.Error("negative max-jobs accepted")
	}

	cfg = goodConfig(t)
	cfg.jobTimeout = -1
	if _, _, _, _, err := buildGateway(cfg); err == nil {
		t.Error("negative job-timeout accepted")
	}

	cfg = goodConfig(t)
	cfg.chunk = -1
	if _, _, _, _, err := buildGateway(cfg); err == nil {
		t.Error("negative chunk accepted")
	}
}

func TestBuildGatewayStoreDir(t *testing.T) {
	// A valid store dir builds and leaves a journal behind.
	cfg := goodConfig(t)
	cfg.storeDir = filepath.Join(t.TempDir(), "store")
	g, _, _, _, err := buildGateway(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g.Close()
	if _, err := os.Stat(filepath.Join(cfg.storeDir, "jobs.wal")); err != nil {
		t.Errorf("no journal created under -store: %v", err)
	}

	// An unusable store dir (an existing file) is rejected pre-socket.
	cfg = goodConfig(t)
	file := filepath.Join(t.TempDir(), "flat-file")
	if err := os.WriteFile(file, []byte("x"), 0o600); err != nil {
		t.Fatal(err)
	}
	cfg.storeDir = file
	if _, _, _, _, err := buildGateway(cfg); err == nil || !strings.Contains(err.Error(), "store") {
		t.Errorf("file as -store dir: %v", err)
	}

	// A corrupt journal (not ours) is rejected pre-socket, not truncated.
	cfg = goodConfig(t)
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "jobs.wal"), []byte("not a journal"), 0o600); err != nil {
		t.Fatal(err)
	}
	cfg.storeDir = dir
	if _, _, _, _, err := buildGateway(cfg); err == nil || !strings.Contains(err.Error(), "journal") {
		t.Errorf("corrupt journal under -store: %v", err)
	}
}

func TestBuildGatewayBadKeyFile(t *testing.T) {
	cfg := goodConfig(t)
	cfg.keyPath = filepath.Join(t.TempDir(), "missing.key")
	if _, _, _, _, err := buildGateway(cfg); err == nil || !strings.Contains(err.Error(), "reading key") {
		t.Errorf("missing key file: %v", err)
	}

	garbage := filepath.Join(t.TempDir(), "garbage.key")
	if err := os.WriteFile(garbage, []byte("not a key"), 0o600); err != nil {
		t.Fatal(err)
	}
	cfg.keyPath = garbage
	if _, _, _, _, err := buildGateway(cfg); err == nil || !strings.Contains(err.Error(), "parsing key") {
		t.Errorf("garbage key file: %v", err)
	}
}

func TestSplitAddrs(t *testing.T) {
	got := splitAddrs(" a:1, ,b:2,")
	if len(got) != 2 || got[0] != "a:1" || got[1] != "b:2" {
		t.Fatalf("splitAddrs = %v", got)
	}
	if out := splitAddrs(""); out != nil {
		t.Fatalf("splitAddrs(\"\") = %v", out)
	}
}

func TestBuildGatewayWiresStockSource(t *testing.T) {
	cfg := goodConfig(t)
	// RemoteSource does not dial until the first fetch, so any address works
	// for construction; draws simply fall back online if nothing listens.
	cfg.stockAddr = "localhost:1"
	cfg.stockZeros = 8
	cfg.stockOnes = 4
	g, _, _, remote, err := buildGateway(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if remote == nil {
		t.Fatal("no RemoteSource built despite -stock")
	}
	defer remote.Close()
}

func TestBuildGatewayRejectsBadStockTargets(t *testing.T) {
	cfg := goodConfig(t)
	cfg.stockAddr = "localhost:1"
	cfg.stockZeros = -1
	if _, _, _, _, err := buildGateway(cfg); err == nil {
		t.Fatal("negative stock target accepted")
	}
}
