// Command stockd runs preprocessing as a service: a daemon that keeps
// per-public-key inventories of pre-encrypted 0/1 bits and precomputed r^N
// randomizers at target depths, and streams batches of them to clients over
// the stock wire protocol. Clients (sumclient -stock, sumjobd -stock)
// prefetch from it instead of paying the paper's §3.3 online encryption
// cost; when stockd is down they silently fall back to online encryption,
// so a stock outage costs latency, never correctness.
//
// stockd holds no secrets: it sees only public keys and mints encryptions of
// the constants 0 and 1 under them. It learns nothing about any client's
// selections or any server's data. Keys are admitted on first hello, up to
// -max-keys.
//
// Usage:
//
//	stockd -listen :7005 -target-zeros 4096 -target-ones 512
//	stockd -listen :7005 -state-dir /var/lib/stockd -rate 2000 -stats-addr :7006
//
// With -state-dir, inventories survive restarts: stock is persisted on
// graceful shutdown (SIGINT/SIGTERM/SIGHUP all drain then persist) and
// restored — fingerprint-checked, so a rotated key's stale files are
// discarded — at startup, before the socket opens. Adding -snapshot-every
// also writes crash-safe snapshots on an interval (and optionally after
// every -snapshot-delta items served), so even a SIGKILL loses at most one
// interval of stock.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"privstats/internal/metrics"
	"privstats/internal/server"
	"privstats/internal/stock"
)

// stockdConfig is everything buildInventory validates before a socket opens.
type stockdConfig struct {
	targets       stock.Targets
	maxKeys       int
	rate          int
	stateDir      string
	snapshotEvery time.Duration
	snapshotDelta int
}

// buildInventory validates the generation knobs and assembles the daemon's
// inventory, so every operator mistake surfaces before any socket is opened.
func buildInventory(cfg stockdConfig) (*stock.Inventory, error) {
	return stock.NewInventory(stock.InventoryConfig{
		Targets:       cfg.targets,
		MaxKeys:       cfg.maxKeys,
		Rate:          cfg.rate,
		StateDir:      cfg.stateDir,
		SnapshotEvery: cfg.snapshotEvery,
		SnapshotDelta: cfg.snapshotDelta,
		Logf:          log.Printf,
	})
}

func main() {
	listen := flag.String("listen", ":7005", "address to serve stock sessions on")
	targetZeros := flag.Int("target-zeros", 4096, "per-key inventory depth of encrypted 0 bits")
	targetOnes := flag.Int("target-ones", 512, "per-key inventory depth of encrypted 1 bits")
	targetRand := flag.Int("target-randomizers", 0, "per-key inventory depth of precomputed r^N randomizers")
	maxKeys := flag.Int("max-keys", stock.DefaultMaxKeys, "public keys admitted before hellos get a busy error")
	rate := flag.Int("rate", 0, "cap stock generation at this many items/second across all keys (0 = unlimited)")
	stateDir := flag.String("state-dir", "", "persist inventories here on shutdown and restore on admission (empty = off)")
	snapshotEvery := flag.Duration("snapshot-every", 0, "also snapshot inventories to -state-dir at this interval, so a kill loses at most one interval of stock (0 = only on graceful exit)")
	snapshotDelta := flag.Int("snapshot-delta", 0, "snapshot early once this many items were served since the last one (0 = interval only)")
	maxSessions := flag.Int("max-sessions", server.DefaultMaxSessions, "max concurrent sessions; overflow connections get a busy error")
	idleTimeout := flag.Duration("idle-timeout", 2*time.Minute, "fail a session whose client sends nothing for this long (0 = never)")
	grace := flag.Duration("grace", 30*time.Second, "drain window for in-flight sessions on SIGINT/SIGTERM")
	statsAddr := flag.String("stats-addr", "", "serve inventory depths as JSON on http://<addr>/stats plus Prometheus /metrics (empty = off)")
	logEvery := flag.Duration("log-every", time.Minute, "interval for the periodic metrics log line (0 = off)")
	pprofFlag := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ on -stats-addr")
	flag.Parse()

	inv, err := buildInventory(stockdConfig{
		targets:       stock.Targets{Zeros: *targetZeros, Ones: *targetOnes, Randomizers: *targetRand},
		maxKeys:       *maxKeys,
		rate:          *rate,
		stateDir:      *stateDir,
		snapshotEvery: *snapshotEvery,
		snapshotDelta: *snapshotDelta,
	})
	if err != nil {
		log.Fatalf("stockd: %v", err)
	}
	// Re-admit persisted keys and restore their stock before the socket
	// opens, and say exactly what came back.
	summary, err := inv.RestoreAll()
	if err != nil {
		log.Fatalf("stockd: %v", err)
	}
	log.Printf("stock: recovery: %s", summary)

	srv, err := server.NewHandler(&stock.Handler{Inv: inv}, server.Config{
		MaxSessions: *maxSessions,
		IdleTimeout: *idleTimeout,
		LogEvery:    *logEvery,
	})
	if err != nil {
		log.Fatalf("stockd: %v", err)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("stockd: listen: %v", err)
	}
	log.Printf("stock daemon on %s (targets %d/%d/%d, max-keys=%d, rate=%d/s)",
		ln.Addr(), *targetZeros, *targetOnes, *targetRand, *maxKeys, *rate)

	var stats *http.Server
	if *statsAddr != "" {
		mux := server.StatsMux(server.StatsMuxConfig{
			Stats: inv.Metrics().Handler(),
			Prom:  metrics.PromHandlerStock(srv.Metrics(), inv.Metrics()),
			Pprof: *pprofFlag,
		})
		stats = &http.Server{Addr: *statsAddr, Handler: mux}
		go func() {
			log.Printf("stats endpoint on http://%s/stats (plus /metrics)", *statsAddr)
			if err := stats.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Printf("stockd: stats endpoint: %v", err)
			}
		}()
	}

	// SIGHUP gets the same drain-then-persist exit as SIGINT/SIGTERM: a
	// hangup from a dying terminal or a supervisor reload must not skip the
	// stock persist.
	sigCtx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM, syscall.SIGHUP)
	defer stopSignals()
	go func() {
		<-sigCtx.Done()
		ctx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		log.Printf("shutdown requested; draining up to %v", *grace)
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("stockd: forced shutdown after grace period: %v", err)
		}
	}()

	err = srv.Serve(ln)
	if err != nil && !errors.Is(err, server.ErrServerClosed) {
		log.Fatalf("stockd: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	_ = srv.Shutdown(ctx)
	if stats != nil {
		_ = stats.Shutdown(context.Background())
	}
	// Stop the refillers and persist surviving stock (the whole point of a
	// graceful exit with -state-dir).
	if err := inv.Close(); err != nil {
		log.Printf("stockd: persisting inventories: %v", err)
	}
	log.Printf("final: %s", srv.Metrics().Summary())
}
