package main

import (
	"testing"

	"privstats/internal/stock"
)

func TestBuildInventoryRejectsBadConfig(t *testing.T) {
	bad := []stockdConfig{
		{},                                  // no targets at all
		{targets: stock.Targets{Zeros: -1}}, // negative depth
		{targets: stock.Targets{Zeros: 1}, maxKeys: -2},
		{targets: stock.Targets{Zeros: 1}, rate: -100},
	}
	for i, cfg := range bad {
		if inv, err := buildInventory(cfg); err == nil {
			inv.Close()
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestBuildInventoryDefaults(t *testing.T) {
	inv, err := buildInventory(stockdConfig{
		targets: stock.Targets{Zeros: 4, Ones: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := inv.Close(); err != nil {
		t.Fatal(err)
	}
}
