package main

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"strings"

	"privstats/internal/cluster"
	"privstats/internal/metrics"
)

// maxReshardBody bounds the shard-map spec an admin may POST; real maps are
// a few hundred bytes, and the cap keeps a stray upload from ballooning.
const maxReshardBody = 1 << 20

// reshardHandler is the admin cut-over endpoint: POST /reshard with a new
// shard-map spec (the -shards syntax, 'lo-hi=primary[|replica...];...') in
// the request body advances the aggregator's epoch register. Sessions
// already in flight finish under the epoch they pinned at their hello; the
// response reports the epoch now serving new sessions.
//
// The endpoint only switches the map — provisioning the new backends (and
// copying their row ranges, e.g. with cstool split + sumserver -table-dir)
// happens before the POST, and retiring the old ones happens after the old
// epoch's sessions drain.
func reshardHandler(epochs *cluster.Epochs, cm *metrics.ClusterMetrics) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			http.Error(w, "POST a shard-map spec to reshard", http.StatusMethodNotAllowed)
			return
		}
		body, err := io.ReadAll(io.LimitReader(r.Body, maxReshardBody+1))
		if err != nil {
			http.Error(w, fmt.Sprintf("reading spec: %v", err), http.StatusBadRequest)
			return
		}
		if len(body) > maxReshardBody {
			http.Error(w, "shard-map spec too large", http.StatusBadRequest)
			return
		}
		spec := strings.TrimSpace(string(body))
		nm, err := cluster.ParseShardMap(spec)
		if err != nil {
			http.Error(w, fmt.Sprintf("invalid shard map: %v", err), http.StatusBadRequest)
			return
		}
		epoch, err := epochs.Advance(nm)
		if err != nil {
			http.Error(w, fmt.Sprintf("cut-over rejected: %v", err), http.StatusConflict)
			return
		}
		cm.Reshards.Inc()
		log.Printf("reshard: advanced to epoch %d (%d rows over %d shards): %s",
			epoch, nm.Rows(), nm.Len(), nm)
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{
			"epoch":  epoch,
			"rows":   nm.Rows(),
			"shards": nm.Len(),
		})
	})
}
