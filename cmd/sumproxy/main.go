// Command sumproxy runs the cluster aggregator for the private
// selected-sum protocol: it fronts a set of sumserver shards that each hold
// a contiguous row range of one logical table, fans every client's
// encrypted index vector out to them, and homomorphically combines the
// partial sums into the single rerandomized ciphertext the client sees.
//
// The aggregator is untrusted for privacy — it only ever handles
// ciphertexts under the client's key (see DESIGN.md §9) — so running it on
// a different operator's machine than the shards costs nothing in the
// threat model.
//
// Client-facing sessions run through the same internal/server runtime as
// sumserver (admission control, idle/session deadlines, graceful drain),
// and the backend fan-out runs through the production client runtime
// (pooling, retry with backoff, replica failover, optional hedged dials and
// CRC-trailed frames). Merged server+cluster counters are served from
// http://<-stats-addr>/stats.
//
// Usage:
//
//	sumproxy -listen :7000 -shards '0-5000=db1:7001;5000-10000=db2:7001'
//	sumproxy -listen :7000 -shards '0-5000=db1:7001|db1b:7001;5000-10000=db2:7001' -retries 3 -hedge-after 500ms
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"privstats/internal/cluster"
	"privstats/internal/metrics"
	"privstats/internal/server"
	"privstats/internal/trace"

	// Accepted cryptosystems register themselves with the scheme registry.
	_ "privstats/internal/crypto/dj"
	_ "privstats/internal/crypto/elgamal"
	_ "privstats/internal/paillier"
)

// errNoShards is the startup rejection for a missing/empty -shards flag.
var errNoShards = errors.New("sumproxy: -shards is required (format: 'lo-hi=primary[|replica...];...')")

// buildAggregator validates the shard spec and assembles the fan-out stack.
// Duplicate or overlapping ranges, gaps, empty backend lists, and empty
// specs all surface here as clear errors — before any socket is opened.
func buildAggregator(shardsSpec string, ccfg cluster.ClientConfig, acfg cluster.AggregatorConfig) (*cluster.ShardMap, *cluster.Client, *cluster.Aggregator, error) {
	if strings.TrimSpace(shardsSpec) == "" {
		return nil, nil, nil, errNoShards
	}
	shards, err := cluster.ParseShardMap(shardsSpec)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("sumproxy: invalid -shards: %w", err)
	}
	client := cluster.NewClient(ccfg)
	agg, err := cluster.NewAggregatorWithConfig(shards, client, acfg)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("sumproxy: %w", err)
	}
	return shards, client, agg, nil
}

// bindStats binds the metrics address up front, so a typo'd or already-bound
// -stats-addr fails startup with a clear error instead of a log line from a
// goroutine minutes later. Empty addr means the endpoint is off (nil, nil).
func bindStats(addr string) (net.Listener, error) {
	if addr == "" {
		return nil, nil
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("sumproxy: cannot bind -stats-addr %s: %w", addr, err)
	}
	return ln, nil
}

func main() {
	listen := flag.String("listen", ":7000", "address to accept client sessions on")
	shardsSpec := flag.String("shards", "", "shard map: 'lo-hi=primary[|replica...];...' covering [0,n) (required)")
	maxSessions := flag.Int("max-sessions", server.DefaultMaxSessions, "max concurrent client sessions; overflow gets a busy error")
	idleTimeout := flag.Duration("idle-timeout", 2*time.Minute, "fail a client session idle for this long (0 = never)")
	sessionTimeout := flag.Duration("session-timeout", 0, "hard cap on a whole client session (0 = none)")
	grace := flag.Duration("grace", 30*time.Second, "drain window for in-flight sessions on SIGINT/SIGTERM")
	statsAddr := flag.String("stats-addr", "", "serve merged server+cluster metrics on http://<addr>/stats (empty = off)")
	logEvery := flag.Duration("log-every", time.Minute, "interval for the periodic metrics log line (0 = off)")
	dialTimeout := flag.Duration("dial-timeout", cluster.DefaultDialTimeout, "TCP connect timeout per backend attempt")
	ioTimeout := flag.Duration("io-timeout", cluster.DefaultIOTimeout, "per-frame idle/write deadline on backend sessions")
	retries := flag.Int("retries", cluster.DefaultRetries, "extra attempts per shard after the first, spread across replicas")
	backoff := flag.Duration("backoff", cluster.DefaultBackoff, "base sleep before a retry, doubled each attempt and jittered")
	maxConns := flag.Int("max-conns", cluster.DefaultMaxConns, "max concurrent sessions per backend")
	probeAfter := flag.Duration("probe-after", cluster.DefaultProbeAfter, "how long a failed backend is skipped before a probe attempt")
	dialHedge := flag.Duration("dial-hedge-after", 0, "launch a second dial if the first is still pending after this delay (0 = off)")
	shardTimeout := flag.Duration("shard-timeout", 0, "per-shard fan-out deadline; a shard past it fails the query as shard-unavailable (0 = none)")
	hedgeAfter := flag.Duration("hedge-after", 0, "re-dispatch a straggling shard to its replica this long after upload completes (0 = off)")
	useCRC := flag.Bool("crc", false, "request CRC32 frame trailers on backend sessions (old backends degrade to plain frames)")
	traceRing := flag.Int("trace-ring", 0, "record the last N traced sessions and serve them at /traces on -stats-addr (0 = off)")
	pprofFlag := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ on -stats-addr")
	flag.Parse()

	shards, client, agg, err := buildAggregator(*shardsSpec, cluster.ClientConfig{
		DialTimeout:        *dialTimeout,
		IOTimeout:          *ioTimeout,
		Retries:            *retries,
		Backoff:            *backoff,
		MaxConnsPerBackend: *maxConns,
		ProbeAfter:         *probeAfter,
		DialHedgeAfter:     *dialHedge,
		UseCRC:             *useCRC,
	}, cluster.AggregatorConfig{
		ShardTimeout: *shardTimeout,
		HedgeAfter:   *hedgeAfter,
	})
	if err != nil {
		if errors.Is(err, errNoShards) {
			flag.Usage()
		}
		log.Fatal(err)
	}
	var recorder *trace.Recorder
	if *traceRing > 0 {
		recorder = trace.NewRecorder(*traceRing)
	}
	srv, err := server.NewHandler(agg, server.Config{
		MaxSessions:    *maxSessions,
		IdleTimeout:    *idleTimeout,
		SessionTimeout: *sessionTimeout,
		LogEvery:       *logEvery,
		Traces:         recorder,
	})
	if err != nil {
		log.Fatalf("sumproxy: %v", err)
	}

	statsLn, err := bindStats(*statsAddr)
	if err != nil {
		log.Fatal(err)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("sumproxy: listen: %v", err)
	}
	log.Printf("aggregating %d rows over %d shards on %s", shards.Rows(), shards.Len(), ln.Addr())
	log.Printf("shard map: %s", shards)

	var stats *http.Server
	if statsLn != nil {
		mux := server.StatsMux(server.StatsMuxConfig{
			Stats:  metrics.ClusterStatsHandler(srv.Metrics(), client.Metrics()),
			Prom:   metrics.PromHandler(srv.Metrics(), client.Metrics()),
			Traces: recorder,
			Pprof:  *pprofFlag,
			Admin: map[string]http.Handler{
				"/reshard": reshardHandler(agg.Epochs(), client.Metrics()),
			},
		})
		stats = &http.Server{Handler: mux}
		go func() {
			log.Printf("stats endpoint on http://%s/stats (plus /metrics)", statsLn.Addr())
			if err := stats.Serve(statsLn); err != nil && err != http.ErrServerClosed {
				log.Printf("sumproxy: stats endpoint: %v", err)
			}
		}()
	}

	sigCtx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	go func() {
		<-sigCtx.Done()
		ctx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		log.Printf("shutdown requested; draining up to %v", *grace)
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("sumproxy: forced shutdown after grace period: %v", err)
		}
	}()

	err = srv.Serve(ln)
	if err != nil && err != server.ErrServerClosed {
		log.Fatalf("sumproxy: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	_ = srv.Shutdown(ctx)
	if stats != nil {
		_ = stats.Shutdown(context.Background())
	}
	log.Printf("final: %s", srv.Metrics().Summary())
}
