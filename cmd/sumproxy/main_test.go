package main

import (
	"errors"
	"net"
	"strings"
	"testing"

	"privstats/internal/cluster"
)

func TestBuildAggregatorEmptySpec(t *testing.T) {
	for _, spec := range []string{"", "   ", "\t"} {
		_, _, _, err := buildAggregator(spec, cluster.ClientConfig{}, cluster.AggregatorConfig{})
		if !errors.Is(err, errNoShards) {
			t.Errorf("spec %q: err = %v, want errNoShards", spec, err)
		}
	}
}

func TestBuildAggregatorValid(t *testing.T) {
	shards, client, agg, err := buildAggregator(
		"0-500=a:1|b:1;500-1000=c:1",
		cluster.ClientConfig{}, cluster.AggregatorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if shards.Rows() != 1000 || shards.Len() != 2 {
		t.Errorf("rows=%d len=%d", shards.Rows(), shards.Len())
	}
	if client == nil || agg == nil {
		t.Error("nil client or aggregator")
	}
}

func TestBuildAggregatorRejectsBadSpecs(t *testing.T) {
	cases := []struct {
		name, spec, wantSub string
	}{
		{"duplicate range", "0-500=a:1;0-500=b:1", "starts at row 0, want 500"},
		{"overlap", "0-500=a:1;400-1000=b:1", "starts at row 400, want 500"},
		{"gap", "0-500=a:1;600-1000=b:1", "starts at row 600, want 500"},
		{"empty range", "0-0=a:1", "empty range"},
		{"no backends", "0-500=", "no backends"},
		{"garbage", "not-a-spec", "want lo-hi"},
		{"bad number", "0-x=a:1", "invalid syntax"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, _, err := buildAggregator(tc.spec, cluster.ClientConfig{}, cluster.AggregatorConfig{})
			if err == nil {
				t.Fatalf("spec %q should fail", tc.spec)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("err = %v, want substring %q", err, tc.wantSub)
			}
		})
	}
}

func TestBindStatsOff(t *testing.T) {
	ln, err := bindStats("")
	if err != nil || ln != nil {
		t.Fatalf("empty addr: ln=%v err=%v", ln, err)
	}
}

func TestBindStatsUnreachable(t *testing.T) {
	// A hostname that cannot resolve must fail at startup, not later.
	if _, err := bindStats("no-such-host.invalid:0"); err == nil {
		t.Fatal("bind on unresolvable host should fail")
	}
	// An already-bound port must also fail immediately.
	taken, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer taken.Close()
	if _, err := bindStats(taken.Addr().String()); err == nil {
		t.Fatal("bind on taken port should fail")
	}
}

func TestBindStatsOK(t *testing.T) {
	ln, err := bindStats("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	if ln.Addr().String() == "" {
		t.Error("no bound address")
	}
}
