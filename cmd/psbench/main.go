// Command psbench regenerates the paper's evaluation: every figure of
// Section 3 plus the Section 2 general-SMC comparison and the ablations
// catalogued in DESIGN.md §4.
//
// Usage:
//
//	psbench                    # every experiment, abbreviated sweep
//	psbench -full              # the paper's full 1k-100k sweep (slow)
//	psbench -fig 2             # one figure
//	psbench -fig yao           # the Fairplay/Yao comparison
//	psbench -csv out/          # also write CSV series per figure
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"privstats/internal/bench"
	"privstats/internal/colstore"
	"privstats/internal/netsim"
)

func main() {
	fig := flag.String("fig", "all", "which experiment: 2,3,4,5,6,7,9,yao,ablate,chunk,scaling,colstore,cluster,preproc,fold,client,baseline or all")
	full := flag.Bool("full", false, "use the paper's full 1k-100k sweep (minutes per figure)")
	keyBits := flag.Int("bits", 512, "Paillier key size (the paper uses 512)")
	clients := flag.Int("clients", 3, "client count for figure 9")
	chunkSize := flag.Int("chunk", 100, "batch size for figures 4/7 (the paper uses 100)")
	csvDir := flag.String("csv", "", "also write CSV series into this directory")
	chart := flag.Bool("chart", false, "also render ASCII bar charts of each figure")
	computeScale := flag.Float64("compute-scale", 1, "multiply measured compute times in figures 2/3/5/6 (e.g. 40 emulates 2004-era hosts; see EXPERIMENTS.md)")
	quiet := flag.Bool("q", false, "suppress per-point progress")
	flag.Parse()

	cfg := bench.DefaultConfig()
	cfg.KeyBits = *keyBits
	cfg.Clients = *clients
	cfg.ChunkSize = *chunkSize
	cfg.ComputeScale = *computeScale
	if *full {
		cfg.Sizes = bench.FullSizes
	}
	if !*quiet {
		cfg.Progress = os.Stderr
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			log.Fatalf("psbench: %v", err)
		}
	}

	if err := run(cfg, strings.ToLower(*fig), *csvDir, *chart); err != nil {
		log.Fatalf("psbench: %v", err)
	}
}

func run(cfg bench.Config, fig, csvDir string, chart bool) error {
	type experiment struct {
		name string
		run  func() error
	}
	out := os.Stdout

	writeCSV := func(name string, f func(w *os.File) error) error {
		if csvDir == "" {
			return nil
		}
		file, err := os.Create(filepath.Join(csvDir, name))
		if err != nil {
			return err
		}
		defer file.Close()
		return f(file)
	}

	components := func(title, csvName string, runner func() ([]bench.ComponentRow, error)) func() error {
		return func() error {
			rows, err := runner()
			if err != nil {
				return err
			}
			if err := bench.WriteComponentTable(out, title, rows); err != nil {
				return err
			}
			if chart {
				if err := bench.WriteComponentChart(out, title+" (chart)", rows); err != nil {
					return err
				}
			}
			return writeCSV(csvName, func(w *os.File) error { return bench.ComponentCSV(w, rows) })
		}
	}
	comparison := func(title, baseName, varName, csvName string, runner func() ([]bench.ComparisonRow, error)) func() error {
		return func() error {
			rows, err := runner()
			if err != nil {
				return err
			}
			if err := bench.WriteComparisonTable(out, title, baseName, varName, rows); err != nil {
				return err
			}
			if chart {
				if err := bench.WriteComparisonChart(out, title+" (chart)", baseName, varName, rows); err != nil {
					return err
				}
			}
			return writeCSV(csvName, func(w *os.File) error { return bench.ComparisonCSV(w, rows) })
		}
	}

	experiments := []experiment{
		{"2", components("Figure 2: runtime components, no optimizations, short distance", "fig2.csv", cfg.Fig2)},
		{"3", components("Figure 3: runtime components, no optimizations, long distance (56Kbps)", "fig3.csv", cfg.Fig3)},
		{"4", comparison("Figure 4: overall runtime with and without batching, short distance",
			"without batching", "with batching", "fig4.csv", cfg.Fig4)},
		{"5", components("Figure 5: runtime components after preprocessing, short distance", "fig5.csv", cfg.Fig5)},
		{"6", components("Figure 6: runtime components after preprocessing, long distance (56Kbps)", "fig6.csv", cfg.Fig6)},
		{"7", comparison("Figure 7: combined optimizations vs. none, short distance",
			"no optimization", "preprocessing+batching", "fig7.csv", cfg.Fig7)},
		{"9", comparison(fmt.Sprintf("Figure 9: %d clients with secret sharing vs. single client", cfg.Clients),
			"single client", "multi-client", "fig9.csv", cfg.Fig9)},
		{"yao", func() error {
			rows, err := cfg.YaoComparison()
			if err != nil {
				return err
			}
			return bench.WriteYaoTable(out, rows)
		}},
		{"ablate", func() error {
			rows, err := cfg.SchemeAblation()
			if err != nil {
				return err
			}
			if err := bench.WriteAblationTable(out, cfg.Sizes[0], rows); err != nil {
				return err
			}
			d, err := cfg.DecryptComparison(200)
			if err != nil {
				return err
			}
			return bench.WriteDecryptTable(out, d)
		}},
		{"chunk", func() error {
			rows, err := cfg.ChunkSweep(nil, netsim.ShortDistance)
			if err != nil {
				return err
			}
			return bench.WriteChunkTable(out, cfg.Sizes[len(cfg.Sizes)-1], netsim.ShortDistance.Name, rows)
		}},
		{"scaling", func() error {
			rows, err := cfg.ServerScaling(8)
			if err != nil {
				return err
			}
			return bench.WriteScalingTable(out, cfg.Sizes[len(cfg.Sizes)-1], rows)
		}},
		{"colstore", func() error {
			rows, err := cfg.ColstoreSweep(colstore.DefaultBlockRows)
			if err != nil {
				return err
			}
			if err := bench.WriteColstoreTable(out, colstore.DefaultBlockRows, rows); err != nil {
				return err
			}
			return writeCSV("colstore.csv", func(w *os.File) error { return bench.ColstoreCSV(w, rows) })
		}},
		{"cluster", func() error {
			rows, err := cfg.ClusterSweep(nil)
			if err != nil {
				return err
			}
			if err := bench.WriteClusterTable(out, cfg.Sizes[len(cfg.Sizes)-1], rows); err != nil {
				return err
			}
			return writeCSV("cluster.csv", func(w *os.File) error { return bench.ClusterCSV(w, rows) })
		}},
		{"fold", func() error {
			rows, err := cfg.FoldAblation(nil, nil, 4)
			if err != nil {
				return err
			}
			if err := bench.WriteFoldTable(out, rows); err != nil {
				return err
			}
			return writeCSV("fold.csv", func(w *os.File) error { return bench.FoldCSV(w, rows) })
		}},
		{"client", func() error {
			rows, err := cfg.ClientEncryptAblation(nil)
			if err != nil {
				return err
			}
			if err := bench.WriteClientEncryptTable(out, rows); err != nil {
				return err
			}
			return writeCSV("client-encrypt.csv", func(w *os.File) error { return bench.ClientEncryptCSV(w, rows) })
		}},
		{"preproc", func() error {
			rows, err := cfg.PreprocessDrain(64, 16)
			if err != nil {
				return err
			}
			if err := bench.WritePreprocTable(out, rows); err != nil {
				return err
			}
			srows, err := cfg.PreprocessService()
			if err != nil {
				return err
			}
			return bench.WritePreprocServiceTable(out, srows)
		}},
		{"baseline", func() error {
			rows, err := cfg.Baselines(netsim.ShortDistance)
			if err != nil {
				return err
			}
			return bench.WriteBaselineTable(out, netsim.ShortDistance.Name, rows)
		}},
	}

	ran := false
	for _, e := range experiments {
		if fig != "all" && fig != e.name {
			continue
		}
		ran = true
		if err := e.run(); err != nil {
			return fmt.Errorf("experiment %s: %w", e.name, err)
		}
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", fig)
	}
	return nil
}
