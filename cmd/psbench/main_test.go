package main

import (
	"os"
	"path/filepath"
	"testing"

	"privstats/internal/bench"
)

func tinyConfig() bench.Config {
	return bench.Config{
		KeyBits:        128,
		Sizes:          []int{40},
		SelectFraction: 0.5,
		ChunkSize:      8,
		Clients:        2,
		Seed:           1,
	}
}

func TestRunSingleExperiment(t *testing.T) {
	for _, fig := range []string{"2", "4", "9", "chunk", "baseline", "scaling"} {
		if err := run(tinyConfig(), fig, "", true); err != nil {
			t.Errorf("fig %s: %v", fig, err)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run(tinyConfig(), "42", "", false); err == nil {
		t.Error("unknown figure should fail")
	}
}

func TestRunWritesCSV(t *testing.T) {
	dir := t.TempDir()
	if err := run(tinyConfig(), "2", dir, false); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig2.csv"))
	if err != nil {
		t.Fatalf("expected fig2.csv: %v", err)
	}
	if len(data) == 0 {
		t.Error("empty CSV")
	}
}
