// Command cstool manages chunked on-disk column stores (internal/colstore)
// — the out-of-core tables cmd/sumserver serves with -table-dir.
//
// Subcommands:
//
//	cstool gen -dir d -rows 100000000          # streaming synthetic ingest
//	cstool info -dir d                         # geometry + row count
//	cstool verify -dir d                       # re-read every block frame
//	cstool split -dir d -out '0:5e7=a,...'     # extract shard directories
//	cstool scan -dir d -m 1000000              # plaintext selected-sum scan
//
// gen streams rows straight to disk in bounded memory, so table size is
// limited by disk, not RAM; scan reports throughput and the process's peak
// RSS, which stays bounded by the block cache however large the table —
// the property the colstore demo asserts at 10^8 rows.
package main

import (
	"flag"
	"fmt"
	"hash/crc32"
	"log"
	"os"
	"strconv"
	"strings"
	"syscall"
	"time"

	"privstats/internal/colstore"
	"privstats/internal/database"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cstool: ")
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "gen":
		err = runGen(os.Args[2:])
	case "info":
		err = runInfo(os.Args[2:])
	case "verify":
		err = runVerify(os.Args[2:])
	case "split":
		err = runSplit(os.Args[2:])
	case "scan":
		err = runScan(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		log.Fatal(err)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: cstool {gen|info|verify|split|scan} [flags]  (run a subcommand with -h for its flags)")
}

// parseRows accepts plain integers and mantissa-e-exponent forms ("1e8").
func parseRows(s string) (int, error) {
	if n, err := strconv.Atoi(s); err == nil {
		return n, nil
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil || f < 0 || f != float64(int(f)) {
		return 0, fmt.Errorf("bad row count %q", s)
	}
	return int(f), nil
}

// ingestBatch is the gen streaming granularity: 64Ki rows (256 KiB) per
// Append keeps memory flat while amortizing the per-call overhead.
const ingestBatch = 1 << 16

func runGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	dir := fs.String("dir", "", "table directory to create (required)")
	rows := fs.String("rows", "", "row count, e.g. 10000000 or 1e8 (required)")
	seed := fs.Int64("seed", 1, "generator seed")
	distName := fs.String("dist", "uniform", "value distribution: uniform, small, zipf, or constant")
	blockRows := fs.Int("block-rows", colstore.DefaultBlockRows, "rows per block")
	baseRow := fs.Uint64("base-row", 0, "global row index of row 0 (shard directories)")
	fs.Parse(args)
	if *dir == "" || *rows == "" {
		fs.Usage()
		os.Exit(2)
	}
	n, err := parseRows(*rows)
	if err != nil {
		return err
	}
	dist, err := database.ParseDistribution(*distName)
	if err != nil {
		return err
	}
	stream, err := database.NewValueStream(dist, *seed)
	if err != nil {
		return err
	}
	store, err := colstore.Create(*dir, colstore.Options{BlockRows: *blockRows, BaseRow: *baseRow, CacheBlocks: -1})
	if err != nil {
		return err
	}
	start := time.Now()
	batch := make([]uint32, ingestBatch)
	for done := 0; done < n; {
		b := batch
		if n-done < len(b) {
			b = b[:n-done]
		}
		stream.Fill(b)
		if err := store.Append(b); err != nil {
			store.Close()
			return err
		}
		done += len(b)
	}
	if err := store.Sync(); err != nil {
		store.Close()
		return err
	}
	st := store.Stats()
	if err := store.Close(); err != nil {
		return err
	}
	el := time.Since(start)
	log.Printf("gen: %d rows (%s, seed %d) in %d blocks of %d, %.1f MB on disk",
		st.Rows, dist, *seed, st.Blocks, st.BlockRows, float64(st.FileBytes)/1e6)
	log.Printf("gen: %.2fs, %.1f Mrows/s, %.1f MB/s, peak_rss_mb=%.1f",
		el.Seconds(), float64(n)/el.Seconds()/1e6, float64(st.FileBytes)/el.Seconds()/1e6, peakRSSMB())
	return nil
}

func runInfo(args []string) error {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	dir := fs.String("dir", "", "table directory (required)")
	fs.Parse(args)
	if *dir == "" {
		fs.Usage()
		os.Exit(2)
	}
	store, err := colstore.Open(*dir, colstore.Options{ReadOnly: true, CacheBlocks: -1})
	if err != nil {
		return err
	}
	defer store.Close()
	st := store.Stats()
	log.Printf("rows=%d blocks=%d block_rows=%d base_row=%d file_bytes=%d torn_tail=%v",
		st.Rows, st.Blocks, st.BlockRows, st.BaseRow, st.FileBytes, st.TornTail)
	return nil
}

func runVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	dir := fs.String("dir", "", "table directory (required)")
	fs.Parse(args)
	if *dir == "" {
		fs.Usage()
		os.Exit(2)
	}
	store, err := colstore.Open(*dir, colstore.Options{ReadOnly: true, CacheBlocks: -1})
	if err != nil {
		return err
	}
	defer store.Close()
	start := time.Now()
	if err := store.Verify(); err != nil {
		return err
	}
	crc, err := store.Checksum(0, store.Len())
	if err != nil {
		return err
	}
	log.Printf("verify: %d rows ok in %.2fs, row_crc32=%#08x", store.Len(), time.Since(start).Seconds(), crc)
	return nil
}

func runSplit(args []string) error {
	fs := flag.NewFlagSet("split", flag.ExitOnError)
	dir := fs.String("dir", "", "source table directory (required)")
	out := fs.String("out", "", "comma-separated 'lo:hi=dstdir' ranges in source-local rows (required)")
	fs.Parse(args)
	if *dir == "" || *out == "" {
		fs.Usage()
		os.Exit(2)
	}
	src, err := colstore.Open(*dir, colstore.Options{ReadOnly: true, CacheBlocks: -1})
	if err != nil {
		return err
	}
	defer src.Close()
	for _, spec := range strings.Split(*out, ",") {
		rangePart, dst, ok := strings.Cut(spec, "=")
		if !ok {
			return fmt.Errorf("bad -out range %q (want lo:hi=dir)", spec)
		}
		loStr, hiStr, ok := strings.Cut(rangePart, ":")
		if !ok {
			return fmt.Errorf("bad -out range %q (want lo:hi=dir)", spec)
		}
		lo, err := parseRows(loStr)
		if err != nil {
			return err
		}
		hi, err := parseRows(hiStr)
		if err != nil {
			return err
		}
		start := time.Now()
		if err := colstore.ExtractShard(src, dst, lo, hi, colstore.Options{}); err != nil {
			return err
		}
		log.Printf("split: rows [%d,%d) -> %s (base row %d) in %.2fs, verified",
			lo, hi, dst, src.BaseRow()+uint64(lo), time.Since(start).Seconds())
	}
	return nil
}

func runScan(args []string) error {
	fs := flag.NewFlagSet("scan", flag.ExitOnError)
	dir := fs.String("dir", "", "table directory (required)")
	m := fs.Int("m", 0, "selected rows for the selected-sum pass (0 = skip; full-scan only)")
	selSeed := fs.Int64("sel-seed", 7, "selection seed")
	verifySeed := fs.Int64("verify-seed", -1, "regenerate the table from this gen seed and compare every row (-1 = off)")
	distName := fs.String("dist", "uniform", "distribution used at gen time (for -verify-seed)")
	fs.Parse(args)
	if *dir == "" {
		fs.Usage()
		os.Exit(2)
	}
	store, err := colstore.Open(*dir, colstore.Options{ReadOnly: true})
	if err != nil {
		return err
	}
	defer store.Close()
	n := store.Len()

	// Pass 1: full sequential scan — plaintext Σx over every row, which is
	// also the ingest-side oracle check when -verify-seed is given.
	var stream *database.ValueStream
	if *verifySeed >= 0 {
		dist, err := database.ParseDistribution(*distName)
		if err != nil {
			return err
		}
		if stream, err = database.NewValueStream(dist, *verifySeed); err != nil {
			return err
		}
	}
	start := time.Now()
	var total uint64
	mismatches := 0
	err = store.Scan(0, n, func(vals []uint32) error {
		for _, v := range vals {
			total += uint64(v)
			if stream != nil && v != stream.Next() {
				mismatches++
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	el := time.Since(start)
	log.Printf("scan: %d rows in %.2fs, %.1f Mrows/s, sum=%d", n, el.Seconds(), float64(n)/el.Seconds()/1e6, total)
	if stream != nil {
		if mismatches > 0 {
			return fmt.Errorf("scan: %d rows differ from regenerated seed %d", mismatches, *verifySeed)
		}
		log.Printf("scan: all %d rows match regenerated seed %d", n, *verifySeed)
	}

	// Pass 2: a selected sum over a seeded random selection — the plaintext
	// analogue of the private query the server would fold, point-reading
	// through the row API like a serving session does.
	if *m > 0 {
		sel, err := database.GenerateSelection(n, *m, database.PatternRandom, *selSeed)
		if err != nil {
			return err
		}
		start = time.Now()
		var selSum uint64
		row := 0
		err = store.Scan(0, n, func(vals []uint32) error {
			for _, v := range vals {
				if sel.Bit(row) == 1 {
					selSum += uint64(v)
				}
				row++
			}
			return nil
		})
		if err != nil {
			return err
		}
		el = time.Since(start)
		log.Printf("scan: selected-sum m=%d in %.2fs, sum=%d, row_crc_sel=%#08x",
			*m, el.Seconds(), selSum, crc32.ChecksumIEEE([]byte(strconv.FormatUint(selSum, 10))))
	}
	log.Printf("scan: peak_rss_mb=%.1f", peakRSSMB())
	return nil
}

// peakRSSMB returns the process's peak resident set in MB (Linux maxrss is
// in KiB) — the demo's bounded-memory evidence.
func peakRSSMB() float64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return -1
	}
	return float64(ru.Maxrss) / 1024
}
