package main

import (
	"errors"
	"net"
	"path/filepath"
	"testing"
)

func TestLoadTableGenerate(t *testing.T) {
	table, err := loadTable("", 500, 3, "")
	if err != nil {
		t.Fatal(err)
	}
	if table.Len() != 500 {
		t.Errorf("len = %d", table.Len())
	}
}

func TestLoadTableGenerateAndSaveThenLoad(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.psdb")
	gen, err := loadTable("", 200, 9, path)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := loadTable(path, 0, 0, "")
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != gen.Len() {
		t.Fatalf("len %d vs %d", loaded.Len(), gen.Len())
	}
	for i := 0; i < gen.Len(); i++ {
		if loaded.Value(i) != gen.Value(i) {
			t.Fatal("saved table differs")
		}
	}
}

func TestLoadTableRejectsBothSources(t *testing.T) {
	if _, err := loadTable("x.psdb", 100, 1, ""); err == nil {
		t.Error("both -db and -generate should fail")
	}
}

func TestLoadTableNoSourceReturnsError(t *testing.T) {
	// The old implementation called os.Exit(2) here, which skipped
	// deferred cleanup and made this path untestable; now main owns the
	// exit decision.
	_, err := loadTable("", 0, 0, "")
	if !errors.Is(err, errNoSource) {
		t.Errorf("err = %v, want errNoSource", err)
	}
}

func TestWrapConnThrottles(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	for _, mode := range []string{"", "modem", "wireless"} {
		if _, err := wrapConn(a, mode); err != nil {
			t.Errorf("mode %q: %v", mode, err)
		}
	}
	if _, err := wrapConn(a, "carrier-pigeon"); err == nil {
		t.Error("unknown throttle should fail")
	}
}
