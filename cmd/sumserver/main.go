// Command sumserver runs the database side of the private selected-sum
// protocol over TCP. It loads (or generates) a table of 32-bit values and
// answers selected-sum sessions, never learning which rows any client asked
// about.
//
// Sessions run through the internal/server runtime: concurrent sessions are
// capped (-max-sessions, overflow connections get a fast busy reply), quiet
// clients are timed out (-idle-timeout), transient accept errors are
// retried with backoff, and SIGINT/SIGTERM drain in-flight sessions for up
// to -grace before exiting. Live counters are served as JSON from
// http://<-stats-addr>/stats when set.
//
// Usage:
//
//	sumserver -listen :7001 -generate 100000
//	sumserver -listen :7001 -db table.psdb -max-sessions 16 -stats-addr :7002
//	sumserver -listen :7001 -generate 10000 -throttle modem   # demo a 56Kbps link
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"privstats/internal/colstore"
	"privstats/internal/database"
	"privstats/internal/metrics"
	"privstats/internal/netsim"
	"privstats/internal/server"
	"privstats/internal/trace"
	"privstats/internal/wire"

	// Accepted cryptosystems register themselves with the scheme registry.
	_ "privstats/internal/crypto/dj"
	_ "privstats/internal/crypto/elgamal"
	_ "privstats/internal/paillier"
)

// errNoSource is returned by loadTable when neither -db nor -generate was
// given; main responds with usage + exit 2 (the old code called os.Exit
// from inside loadTable, which skipped deferred cleanup and was untestable).
var errNoSource = errors.New("need -db or -generate")

func main() {
	listen := flag.String("listen", ":7001", "address to listen on")
	dbPath := flag.String("db", "", "table file to serve (written by -save or the database package)")
	tableDir := flag.String("table-dir", "", "serve a chunked on-disk column store directory (see cstool; exclusive with -db/-generate)")
	cacheBlocks := flag.Int("cache-blocks", colstore.DefaultCacheBlocks, "decoded-block LRU capacity for -table-dir (negative = no cache)")
	generate := flag.Int("generate", 0, "generate a synthetic table of this many rows instead of loading one")
	seed := flag.Int64("seed", 1, "seed for -generate")
	save := flag.String("save", "", "write the generated table to this path and keep serving")
	shard := flag.String("shard", "", "serve only rows lo:hi of the table (a cluster backend behind sumproxy; the proxy's -shards range must match)")
	throttle := flag.String("throttle", "", "simulate a link on each connection: 'modem' (56Kbps), 'wireless' (1Mbps), or empty for none")
	once := flag.Bool("once", false, "serve a single session and exit (used by scripts and tests)")
	maxSessions := flag.Int("max-sessions", server.DefaultMaxSessions, "max concurrent sessions; overflow connections get a busy error")
	idleTimeout := flag.Duration("idle-timeout", 2*time.Minute, "fail a session whose client sends nothing for this long (0 = never)")
	sessionTimeout := flag.Duration("session-timeout", 0, "hard cap on a whole session (0 = none)")
	grace := flag.Duration("grace", 30*time.Second, "drain window for in-flight sessions on SIGINT/SIGTERM")
	statsAddr := flag.String("stats-addr", "", "serve live metrics as JSON on http://<addr>/stats (empty = off)")
	logEvery := flag.Duration("log-every", time.Minute, "interval for the periodic metrics log line (0 = off)")
	traceRing := flag.Int("trace-ring", 0, "record the last N traced sessions and serve them at /traces on -stats-addr (0 = off)")
	pprofFlag := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ on -stats-addr")
	flag.Parse()

	// Reject a bad throttle name now rather than on every connection —
	// wrapConn runs per session, so without this check the server would
	// start fine and then fail each client with a confusing wrap error.
	switch *throttle {
	case "", "modem", "wireless":
	default:
		log.Fatalf("sumserver: unknown -throttle %q (want modem, wireless, or empty)", *throttle)
	}

	var src database.Source
	if *tableDir != "" {
		if *dbPath != "" || *generate > 0 {
			log.Fatalf("sumserver: use either -table-dir or -db/-generate, not both")
		}
		var err error
		src, err = openStoreDir(*tableDir, *cacheBlocks, *shard)
		if err != nil {
			log.Fatalf("sumserver: %v", err)
		}
	} else {
		table, err := loadTable(*dbPath, *generate, *seed, *save)
		if errors.Is(err, errNoSource) {
			flag.Usage()
			os.Exit(2)
		}
		if err != nil {
			log.Fatalf("sumserver: %v", err)
		}
		if *shard != "" {
			table, err = sliceShard(table, *shard)
			if err != nil {
				log.Fatalf("sumserver: %v", err)
			}
		}
		src = table
	}

	var recorder *trace.Recorder
	if *traceRing > 0 {
		recorder = trace.NewRecorder(*traceRing)
	}
	cfg := server.Config{
		MaxSessions:    *maxSessions,
		IdleTimeout:    *idleTimeout,
		SessionTimeout: *sessionTimeout,
		LogEvery:       *logEvery,
		Traces:         recorder,
		WrapConn:       func(c net.Conn) (*wire.Conn, error) { return wrapConn(c, *throttle) },
	}
	if *once {
		cfg.SessionLimit = 1
	}
	srv, err := server.NewSource(src, cfg)
	if err != nil {
		log.Fatalf("sumserver: %v", err)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("sumserver: listen: %v", err)
	}
	log.Printf("serving %d rows on %s (throttle=%q, max-sessions=%d)", src.Len(), ln.Addr(), *throttle, *maxSessions)

	var stats *http.Server
	if *statsAddr != "" {
		mux := server.StatsMux(server.StatsMuxConfig{
			Stats:  srv.Metrics().Handler(),
			Prom:   metrics.PromHandler(srv.Metrics(), nil),
			Traces: recorder,
			Pprof:  *pprofFlag,
		})
		stats = &http.Server{Addr: *statsAddr, Handler: mux}
		go func() {
			log.Printf("stats endpoint on http://%s/stats (plus /metrics)", *statsAddr)
			if err := stats.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Printf("sumserver: stats endpoint: %v", err)
			}
		}()
	}

	// SIGINT/SIGTERM begin a graceful drain bounded by -grace.
	sigCtx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	go func() {
		<-sigCtx.Done()
		ctx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		log.Printf("shutdown requested; draining up to %v", *grace)
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("sumserver: forced shutdown after grace period: %v", err)
		}
	}()

	err = srv.Serve(ln)
	if err != nil && err != server.ErrServerClosed {
		log.Fatalf("sumserver: %v", err)
	}
	// Serve returned because shutdown began (signal or -once); finish the
	// drain before reporting final stats.
	ctx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	_ = srv.Shutdown(ctx)
	if stats != nil {
		_ = stats.Shutdown(context.Background())
	}
	log.Printf("final: %s", srv.Metrics().Summary())
}

// loadTable resolves the table source from flags. It returns errNoSource
// when neither source flag was given.
func loadTable(dbPath string, generate int, seed int64, save string) (*database.Table, error) {
	switch {
	case dbPath != "" && generate > 0:
		return nil, fmt.Errorf("use either -db or -generate, not both")
	case dbPath != "":
		return database.LoadFile(dbPath)
	case generate > 0:
		table, err := database.Generate(generate, database.DistUniform, seed)
		if err != nil {
			return nil, err
		}
		if save != "" {
			if err := table.SaveFile(save); err != nil {
				return nil, err
			}
			log.Printf("saved generated table to %s", save)
		}
		return table, nil
	default:
		return nil, errNoSource
	}
}

// sliceShard applies the -shard lo:hi restriction.
func sliceShard(table *database.Table, spec string) (*database.Table, error) {
	lo, hi, err := parseShardSpec(spec)
	if err != nil {
		return nil, err
	}
	shard, err := table.Shard(lo, hi)
	if err != nil {
		return nil, err
	}
	log.Printf("restricted to shard [%d,%d) of the %d-row table", lo, hi, table.Len())
	return shard, nil
}

// parseShardSpec parses "lo:hi".
func parseShardSpec(spec string) (lo, hi int, err error) {
	loStr, hiStr, ok := strings.Cut(spec, ":")
	if !ok {
		return 0, 0, fmt.Errorf("bad -shard %q (want lo:hi)", spec)
	}
	if lo, err = strconv.Atoi(loStr); err != nil {
		return 0, 0, fmt.Errorf("bad -shard %q: %w", spec, err)
	}
	if hi, err = strconv.Atoi(hiStr); err != nil {
		return 0, 0, fmt.Errorf("bad -shard %q: %w", spec, err)
	}
	return lo, hi, nil
}

// openStoreDir opens a colstore table directory read-only and applies the
// optional -shard restriction in global row coordinates: a shard directory
// written by a migration carries its base row in the header and serves
// global rows [BaseRow, BaseRow+Len), so -shard lo:hi both cross-checks
// the directory against the proxy's shard map and slices a full-table
// directory down to one shard's range.
func openStoreDir(dir string, cacheBlocks int, shardSpec string) (database.Source, error) {
	store, err := colstore.Open(dir, colstore.Options{ReadOnly: true, CacheBlocks: cacheBlocks})
	if err != nil {
		return nil, err
	}
	st := store.Stats()
	if st.TornTail {
		log.Printf("column store %s: ignoring a torn tail block (read-only open)", dir)
	}
	log.Printf("opened column store %s: %d rows in %d blocks of %d (base row %d)",
		dir, st.Rows, st.Blocks, st.BlockRows, st.BaseRow)
	if shardSpec == "" {
		return store, nil
	}
	lo, hi, err := parseShardSpec(shardSpec)
	if err != nil {
		return nil, err
	}
	base := int(store.BaseRow())
	if lo < base || hi > base+store.Len() {
		return nil, fmt.Errorf("-shard [%d,%d) outside the store's global range [%d,%d)",
			lo, hi, base, base+store.Len())
	}
	view, err := store.Range(lo-base, hi-base)
	if err != nil {
		return nil, err
	}
	log.Printf("restricted to shard [%d,%d) of global rows [%d,%d)", lo, hi, base, base+store.Len())
	return view, nil
}

// wrapConn frames the connection, optionally through a bandwidth throttle.
func wrapConn(c net.Conn, throttle string) (*wire.Conn, error) {
	switch throttle {
	case "":
		return wire.NewConn(c), nil
	case "modem":
		th, err := netsim.NewThrottle(c, netsim.LongDistance)
		if err != nil {
			return nil, err
		}
		return wire.NewConn(th), nil
	case "wireless":
		th, err := netsim.NewThrottle(c, netsim.Wireless)
		if err != nil {
			return nil, err
		}
		return wire.NewConn(th), nil
	default:
		return nil, fmt.Errorf("unknown throttle %q (want modem, wireless, or empty)", throttle)
	}
}
