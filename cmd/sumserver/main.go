// Command sumserver runs the database side of the private selected-sum
// protocol over TCP. It loads (or generates) a table of 32-bit values and
// answers one session per connection, never learning which rows any client
// asked about.
//
// Usage:
//
//	sumserver -listen :7001 -generate 100000
//	sumserver -listen :7001 -db table.psdb
//	sumserver -listen :7001 -generate 10000 -throttle modem   # demo a 56Kbps link
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"

	"privstats/internal/database"
	"privstats/internal/netsim"
	"privstats/internal/selectedsum"
	"privstats/internal/wire"

	// Accepted cryptosystems register themselves with the scheme registry.
	_ "privstats/internal/crypto/dj"
	_ "privstats/internal/crypto/elgamal"
	_ "privstats/internal/paillier"
)

func main() {
	listen := flag.String("listen", ":7001", "address to listen on")
	dbPath := flag.String("db", "", "table file to serve (written by -save or the database package)")
	generate := flag.Int("generate", 0, "generate a synthetic table of this many rows instead of loading one")
	seed := flag.Int64("seed", 1, "seed for -generate")
	save := flag.String("save", "", "write the generated table to this path and keep serving")
	throttle := flag.String("throttle", "", "simulate a link on each connection: 'modem' (56Kbps), 'wireless' (1Mbps), or empty for none")
	once := flag.Bool("once", false, "serve a single session and exit (used by scripts and tests)")
	flag.Parse()

	table, err := loadTable(*dbPath, *generate, *seed, *save)
	if err != nil {
		log.Fatalf("sumserver: %v", err)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("sumserver: listen: %v", err)
	}
	defer ln.Close()
	log.Printf("serving %d rows on %s (throttle=%q)", table.Len(), ln.Addr(), *throttle)

	for {
		conn, err := ln.Accept()
		if err != nil {
			log.Fatalf("sumserver: accept: %v", err)
		}
		handle := func(c net.Conn) {
			defer c.Close()
			wc, err := wrapConn(c, *throttle)
			if err != nil {
				log.Printf("session setup: %v", err)
				return
			}
			if err := selectedsum.Serve(wc, table); err != nil {
				log.Printf("session from %s failed: %v", c.RemoteAddr(), err)
				return
			}
			out, in, _, _ := wc.Meter.Snapshot()
			log.Printf("session from %s complete: %d bytes in, %d bytes out", c.RemoteAddr(), in, out)
		}
		if *once {
			handle(conn)
			return
		}
		go handle(conn)
	}
}

func loadTable(dbPath string, generate int, seed int64, save string) (*database.Table, error) {
	switch {
	case dbPath != "" && generate > 0:
		return nil, fmt.Errorf("use either -db or -generate, not both")
	case dbPath != "":
		return database.LoadFile(dbPath)
	case generate > 0:
		table, err := database.Generate(generate, database.DistUniform, seed)
		if err != nil {
			return nil, err
		}
		if save != "" {
			if err := table.SaveFile(save); err != nil {
				return nil, err
			}
			log.Printf("saved generated table to %s", save)
		}
		return table, nil
	default:
		flag.Usage()
		os.Exit(2)
		return nil, nil
	}
}

// wrapConn frames the connection, optionally through a bandwidth throttle.
func wrapConn(c net.Conn, throttle string) (*wire.Conn, error) {
	switch throttle {
	case "":
		return wire.NewConn(c), nil
	case "modem":
		th, err := netsim.NewThrottle(c, netsim.LongDistance)
		if err != nil {
			return nil, err
		}
		return wire.NewConn(th), nil
	case "wireless":
		th, err := netsim.NewThrottle(c, netsim.Wireless)
		if err != nil {
			return nil, err
		}
		return wire.NewConn(th), nil
	default:
		return nil, fmt.Errorf("unknown throttle %q (want modem, wireless, or empty)", throttle)
	}
}
