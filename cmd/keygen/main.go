// Command keygen generates a Paillier key pair and optionally a
// preprocessed store of encrypted index bits (the paper's §3.3 offline
// phase), writing them to files the other tools consume.
//
// Usage:
//
//	keygen -bits 512 -out client.key
//	keygen -bits 512 -out client.key -preprocess 100000
//
// The private key file contains the prime factors; protect it accordingly.
package main

import (
	"crypto/rand"
	"flag"
	"fmt"
	"os"
	"time"

	"privstats/internal/paillier"
)

func main() {
	bits := flag.Int("bits", 512, "Paillier modulus size in bits (the paper uses 512)")
	out := flag.String("out", "client.key", "private key output path (public key written to <out>.pub)")
	preprocess := flag.Int("preprocess", 0, "also time preprocessing this many index-bit encryptions (half 0s, half 1s)")
	store := flag.String("store", "", "write the preprocessed encryptions to this file for sumclient -store")
	flag.Parse()

	if err := run(*bits, *out, *preprocess, *store); err != nil {
		fmt.Fprintln(os.Stderr, "keygen:", err)
		os.Exit(1)
	}
}

func run(bits int, out string, preprocess int, storePath string) error {
	start := time.Now()
	sk, err := paillier.KeyGen(rand.Reader, bits)
	if err != nil {
		return err
	}
	fmt.Printf("generated %d-bit Paillier key in %v\n", bits, time.Since(start).Round(time.Millisecond))

	priv, err := sk.MarshalBinary()
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, priv, 0o600); err != nil {
		return fmt.Errorf("writing private key: %w", err)
	}
	pub, err := sk.Public().MarshalBinary()
	if err != nil {
		return err
	}
	if err := os.WriteFile(out+".pub", pub, 0o644); err != nil {
		return fmt.Errorf("writing public key: %w", err)
	}
	fmt.Printf("private key: %s\npublic key:  %s.pub\n", out, out)

	if preprocess > 0 {
		// keygen just generated sk, so the fill is owner-side: CRT path.
		store := paillier.NewBitStoreOwner(sk)
		start = time.Now()
		if err := store.FillParallel(preprocess/2, preprocess-preprocess/2, 4); err != nil {
			return fmt.Errorf("preprocessing: %w", err)
		}
		d := time.Since(start)
		fmt.Printf("preprocessed %d bit encryptions in %v (%.0f enc/s)\n",
			preprocess, d.Round(time.Millisecond), float64(preprocess)/d.Seconds())
		if storePath != "" {
			if err := store.SaveFile(storePath); err != nil {
				return fmt.Errorf("saving preprocessed store: %w", err)
			}
			fmt.Printf("preprocessed store: %s (bound to this key)\n", storePath)
		}
	} else if storePath != "" {
		return fmt.Errorf("-store requires -preprocess")
	}
	return nil
}
