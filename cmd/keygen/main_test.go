package main

import (
	"os"
	"path/filepath"
	"testing"

	"privstats/internal/paillier"
)

func TestRunWritesKeyPair(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "c.key")
	if err := run(128, out, 4, ""); err != nil {
		t.Fatal(err)
	}
	privRaw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var sk paillier.PrivateKey
	if err := sk.UnmarshalBinary(privRaw); err != nil {
		t.Fatalf("private key unparseable: %v", err)
	}
	pubRaw, err := os.ReadFile(out + ".pub")
	if err != nil {
		t.Fatal(err)
	}
	var pk paillier.PublicKey
	if err := pk.UnmarshalBinary(pubRaw); err != nil {
		t.Fatalf("public key unparseable: %v", err)
	}
	if !pk.Equal(sk.Public()) {
		t.Error("written public key does not match private key")
	}
	// The private key file must not be world readable.
	info, err := os.Stat(out)
	if err != nil {
		t.Fatal(err)
	}
	if info.Mode().Perm() != 0o600 {
		t.Errorf("private key mode = %v, want 0600", info.Mode().Perm())
	}
}

func TestRunRejectsTinyKey(t *testing.T) {
	if err := run(16, filepath.Join(t.TempDir(), "k"), 0, ""); err == nil {
		t.Error("16-bit key should fail")
	}
}

func TestRunRejectsUnwritablePath(t *testing.T) {
	if err := run(128, filepath.Join(t.TempDir(), "no-such-dir", "k"), 0, ""); err == nil {
		t.Error("unwritable path should fail")
	}
}
