module privstats

go 1.22
