# privstats build/verify targets. `make check` is the PR gate: formatting,
# vet, the full test suite, and race-detector runs on the concurrency-heavy
# runtime packages.

GO ?= go

.PHONY: all build test race fmt vet check chaos chaos-restart fuzz-smoke bench-fold bench-client cluster-demo colstore-demo cover

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detect the packages with real concurrency: the server runtime, the
# protocol layer it drives, the cluster fan-out, the fault-injection
# transport, the framed wire layer (its Conn carries cross-goroutine meter
# and trace state), the job gateway (fair-share scheduler + worker
# goroutines), the durability layer (journal append vs. compaction), and
# the column store (streaming ingest vs. concurrent block reads).
race:
	$(GO) test -race ./internal/server/ ./internal/selectedsum/ ./internal/cluster/ ./internal/faultnet/ ./internal/wire/ ./internal/jobs/ ./internal/stock/ ./internal/durable/ ./internal/colstore/

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

check: fmt vet build test race
	@echo "check: all clean"

# Chaos suite: the loopback cluster under seeded faultnet plans (resets,
# corruption, stalled backends, mid-frame kills, dial refusals), under the
# race detector, twice — the fault plans are seeded, so both runs must
# inject and survive identically.
chaos:
	$(GO) test -race -run 'TestChaos' -count=2 ./internal/cluster/

# Restart-chaos suite: the real sumjobd/stockd/sumserver/sumproxy binaries
# SIGKILLed at seeded random points mid-run and restarted on the same state
# directories, under the race detector. Every job must end exact-vs-oracle
# or cleanly classified; the stock daemon must restore its last snapshot
# exactly; the resharding migration must never serve a wrong statistic.
CHAOS_RESTARTS ?= 100
chaos-restart:
	CHAOS_RESTARTS=$(CHAOS_RESTARTS) $(GO) test -race -timeout 45m -run 'TestRestartChaos' -count=1 ./internal/chaos/

# Fuzz smoke: a short live-fuzz burst per target (the seed corpus alone runs
# in `make test`). Go runs one fuzz target per invocation, hence the loop.
FUZZTIME ?= 5s
fuzz-smoke:
	@set -e; \
	for t in FuzzReadFrame FuzzDecodeErrorPayload FuzzDecodeHello FuzzDecodeIndexChunk; do \
		$(GO) test -fuzz="^$$t$$" -fuzztime=$(FUZZTIME) ./internal/wire/; \
	done; \
	$(GO) test -fuzz='^FuzzParseShardMapSpec$$' -fuzztime=$(FUZZTIME) ./internal/cluster/; \
	$(GO) test -fuzz='^FuzzReadTable$$' -fuzztime=$(FUZZTIME) ./internal/database/; \
	for t in FuzzParseCiphertext FuzzPrivateKeyUnmarshal FuzzReadBitStore FuzzEncryptCRTEquivalence; do \
		$(GO) test -fuzz="^$$t$$" -fuzztime=$(FUZZTIME) ./internal/paillier/; \
	done; \
	$(GO) test -fuzz='^FuzzFoldEquivalence$$' -fuzztime=$(FUZZTIME) ./internal/selectedsum/; \
	$(GO) test -fuzz='^FuzzDecodeJobSpec$$' -fuzztime=$(FUZZTIME) ./internal/jobs/; \
	$(GO) test -fuzz='^FuzzReplayJournal$$' -fuzztime=$(FUZZTIME) ./internal/durable/; \
	$(GO) test -fuzz='^FuzzReadBlock$$' -fuzztime=$(FUZZTIME) ./internal/colstore/

# Coverage gate: profile ./internal/..., print per-package percentages, and
# fail if the total drops below the committed floor. The floor is the
# measured total minus a small slack — raise it as coverage grows, never
# lower it to make a PR pass.
COVER_FLOOR ?= 80.0
cover:
	@sh scripts/cover.sh $(COVER_FLOOR)

# Server-fold ablation: one bounded pass of the naive-vs-bucket
# multi-exponentiation benchmark (reference run in results/multiexp.txt).
bench-fold:
	$(GO) test -run '^$$' -bench '^BenchmarkFoldMultiExp$$' -benchtime 1x .

# Client-encrypt ablation: the public-key encryption path vs. the key
# owner's CRT path vs. a CRT-filled randomizer pool, every cell
# decrypt-verified (reference run in results/client-encrypt.txt).
bench-client:
	$(GO) run ./cmd/psbench -fig client -q

# Live sharded deployment on loopback: two sumserver shard backends behind
# the sumproxy aggregator, queried by sumclient, checked against a direct
# single-server run over the same table and selection.
cluster-demo:
	@mkdir -p bin
	$(GO) build -o bin/ ./cmd/sumserver ./cmd/sumproxy ./cmd/sumclient
	@sh scripts/cluster_demo.sh

# Out-of-core column store demo: generate ROWS rows (default 1e8, ~400 MB)
# straight to disk, re-read every row against the regenerated stream with
# peak RSS asserted far below the table size, then serve a shard directory
# with sumserver -table-dir and pin a real private query to the plaintext
# scan of the same selection.
ROWS ?= 1e8
colstore-demo:
	@mkdir -p bin
	$(GO) build -o bin/ ./cmd/cstool ./cmd/sumserver ./cmd/sumclient
	@ROWS=$(ROWS) sh scripts/colstore_demo.sh
