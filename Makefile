# privstats build/verify targets. `make check` is the PR gate: formatting,
# vet, the full test suite, and race-detector runs on the concurrency-heavy
# runtime packages.

GO ?= go

.PHONY: all build test race fmt vet check

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detect the packages with real concurrency: the server runtime and
# the protocol layer it drives.
race:
	$(GO) test -race ./internal/server/ ./internal/selectedsum/

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

check: fmt vet build test race
	@echo "check: all clean"
