# privstats build/verify targets. `make check` is the PR gate: formatting,
# vet, the full test suite, and race-detector runs on the concurrency-heavy
# runtime packages.

GO ?= go

.PHONY: all build test race fmt vet check cluster-demo

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detect the packages with real concurrency: the server runtime, the
# protocol layer it drives, and the cluster fan-out.
race:
	$(GO) test -race ./internal/server/ ./internal/selectedsum/ ./internal/cluster/

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

check: fmt vet build test race
	@echo "check: all clean"

# Live sharded deployment on loopback: two sumserver shard backends behind
# the sumproxy aggregator, queried by sumclient, checked against a direct
# single-server run over the same table and selection.
cluster-demo:
	@mkdir -p bin
	$(GO) build -o bin/ ./cmd/sumserver ./cmd/sumproxy ./cmd/sumclient
	@sh scripts/cluster_demo.sh
