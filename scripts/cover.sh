#!/bin/sh
# Coverage gate for `make cover`: profile every internal package (the per-
# package percentages print as the tests run), then compare the total against
# the committed floor. The floor lives in the Makefile (COVER_FLOOR) so
# raising or lowering it is a reviewed change, not a CI-side tweak.
set -e

floor="${1:?usage: cover.sh <floor-percent>}"
profile="${2:-cover.out}"

go test -coverprofile="$profile" ./internal/...

total=$(go tool cover -func="$profile" | tail -1 | awk '{sub(/%/,"",$3); print $3}')
if [ -z "$total" ]; then
    echo "cover.sh: could not read total coverage from $profile" >&2
    exit 1
fi
echo "total coverage: ${total}% (floor ${floor}%)"
if awk -v t="$total" -v f="$floor" 'BEGIN { exit !(t+0 < f+0) }'; then
    echo "cover.sh: total coverage ${total}% fell below the committed floor ${floor}%" >&2
    exit 1
fi
