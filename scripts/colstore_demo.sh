#!/bin/sh
# Out-of-core column store demo driven by the real tools: generate a table
# far larger than the block cache straight to disk, re-read every row
# against the regenerated stream (so the disk bytes are pinned to the
# deterministic oracle), and assert the process's peak RSS stayed bounded —
# the table lives on disk, not in memory. Then carve a shard directory out
# of the big table and serve it with sumserver -table-dir: the private
# selected sum the client decrypts must equal cstool's plaintext scan of
# the same selection.
#
# Invoked by `make colstore-demo`; expects the binaries in $BIN (default
# bin/). ROWS and MAX_RSS_MB are overridable: the default 1e8 rows is a
# ~400 MB table read back within a ~512 MB RSS budget.
set -eu

BIN=${BIN:-bin}
ROWS=${ROWS:-1e8}
MAX_RSS_MB=${MAX_RSS_MB:-512}
SEED=3
DIR=${DIR:-$(mktemp -d /tmp/colstore-demo.XXXXXX)}
SERVE_ROWS=100000
SELSEED=7
SELECT_M=1000
BITS=256

PIDS=""
cleanup() {
	# shellcheck disable=SC2086
	[ -n "$PIDS" ] && kill $PIDS 2>/dev/null || true
	rm -rf "$DIR"
}
trap cleanup EXIT INT TERM

echo "== gen: $ROWS rows into $DIR/big"
"$BIN"/cstool gen -dir "$DIR/big" -rows "$ROWS" -seed $SEED
"$BIN"/cstool info -dir "$DIR/big"

echo "== scan: full re-read, every row compared to the regenerated stream"
scan_out=$("$BIN"/cstool scan -dir "$DIR/big" -verify-seed $SEED 2>&1)
echo "$scan_out"
echo "$scan_out" | grep -q "rows match regenerated seed" || {
	echo "colstore-demo: scan verification missing" >&2
	exit 1
}

rss=$(echo "$scan_out" | awk -F'peak_rss_mb=' '/peak_rss_mb/ {print int($2)}')
if [ -z "$rss" ] || [ "$rss" -gt "$MAX_RSS_MB" ]; then
	echo "colstore-demo: peak RSS ${rss:-?} MB exceeds the $MAX_RSS_MB MB budget" >&2
	exit 1
fi
echo "== bounded memory: peak RSS ${rss} MB for the on-disk table (budget $MAX_RSS_MB MB)"

echo "== split: first $SERVE_ROWS rows into a shard directory"
"$BIN"/cstool split -dir "$DIR/big" -out "0:$SERVE_ROWS=$DIR/shard"

# Serve the shard from disk and run a real private query against it.
"$BIN"/sumserver -listen 127.0.0.1:17111 -table-dir "$DIR/shard" -log-every 0 &
PIDS="$PIDS $!"

private_sum=$("$BIN"/sumclient -server 127.0.0.1:17111 -n $SERVE_ROWS \
	-select 0.01 -seed $SELSEED -bits $BITS -chunk 100 -retries 5 -backoff 200ms |
	awk '/selected sum:/ {print $3}')
plain_sum=$("$BIN"/cstool scan -dir "$DIR/shard" -m $SELECT_M -sel-seed $SELSEED 2>&1 |
	sed -n 's/.*selected-sum.*sum=\([0-9][0-9]*\),.*/\1/p')

echo "private query  : $private_sum"
echo "plaintext scan : $plain_sum"
if [ -z "$private_sum" ] || [ "$private_sum" != "$plain_sum" ]; then
	echo "colstore-demo: MISMATCH between the private query and the plaintext scan" >&2
	exit 1
fi

echo "colstore-demo: OK ($ROWS rows served from disk, RSS ${rss} MB, private sum exact)"
