#!/bin/sh
# Live cluster demo driven by the real daemons: two shard backends and the
# untrusted aggregator on loopback, queried by sumclient. The cluster's
# answer must equal a direct single-server run over the same deterministic
# table and selection — and that single-server path is itself verified
# against the cleartext oracle by the test suite, so agreement here pins
# the sharded deployment to the cleartext sum as well.
#
# Invoked by `make cluster-demo`; expects the binaries in $BIN (default bin/).
set -eu

BIN=${BIN:-bin}
N=2000
SPLIT=1200
SEED=5
SELSEED=7
BITS=256

PIDS=""
cleanup() {
	# shellcheck disable=SC2086
	[ -n "$PIDS" ] && kill $PIDS 2>/dev/null || true
}
trap cleanup EXIT INT TERM

# Two shard backends generate the SAME logical table (same seed) and each
# serves its half; a third serves the whole table as the reference.
"$BIN"/sumserver -listen 127.0.0.1:17101 -generate $N -seed $SEED -shard 0:$SPLIT -log-every 0 &
PIDS="$PIDS $!"
"$BIN"/sumserver -listen 127.0.0.1:17102 -generate $N -seed $SEED -shard $SPLIT:$N -log-every 0 &
PIDS="$PIDS $!"
"$BIN"/sumserver -listen 127.0.0.1:17103 -generate $N -seed $SEED -log-every 0 &
PIDS="$PIDS $!"
"$BIN"/sumproxy -listen 127.0.0.1:17100 \
	-shards "0-$SPLIT=127.0.0.1:17101;$SPLIT-$N=127.0.0.1:17102" \
	-stats-addr 127.0.0.1:17109 -log-every 0 &
PIDS="$PIDS $!"

# The client runtime's retry/backoff flags absorb the startup race.
run_query() {
	"$BIN"/sumclient -server "$1" -n $N -select 0.5 -seed $SELSEED \
		-bits $BITS -chunk 100 -retries 5 -backoff 200ms |
		awk '/selected sum:/ {print $3}'
}

cluster_sum=$(run_query 127.0.0.1:17100)
direct_sum=$(run_query 127.0.0.1:17103)

echo "cluster (2 shards): $cluster_sum"
echo "direct (1 server) : $direct_sum"

if [ -z "$cluster_sum" ] || [ "$cluster_sum" != "$direct_sum" ]; then
	echo "cluster-demo: MISMATCH" >&2
	exit 1
fi

# The aggregator's /stats endpoint must be live and report the session.
if command -v curl >/dev/null 2>&1; then
	curl -sf http://127.0.0.1:17109/stats | head -c 200 >/dev/null &&
		echo "aggregator /stats: live"
fi

echo "cluster-demo: OK (sharded answer matches the single-server run)"
