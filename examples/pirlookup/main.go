// PIR lookup: retrieve ONE element of a remote database without the server
// learning which — with O(√n) communication instead of the selected-sum
// protocol's O(n).
//
// The paper implements the linear-communication instance of selective
// private function evaluation; the underlying literature (Canetti et al.,
// its reference [5]) builds sublinear variants from private information
// retrieval. This example runs that building block: a square-root PIR over
// the same Paillier machinery, and prints the bandwidth comparison that
// motivates it.
//
// Run it:
//
//	go run ./examples/pirlookup
package main

import (
	"crypto/rand"
	"fmt"
	"log"
	"time"

	"privstats/internal/database"
	"privstats/internal/paillier"
	"privstats/internal/pir"
)

func main() {
	const n = 2_500 // a 50x50 matrix
	table, err := database.Generate(n, database.DistUniform, 99)
	if err != nil {
		log.Fatal(err)
	}
	key, err := paillier.KeyGen(rand.Reader, 512)
	if err != nil {
		log.Fatal(err)
	}
	sk := paillier.SchemeKey{SK: key}
	pk := sk.PublicKey()

	const secretIndex = 1_234
	layout, err := pir.NewLayout(n)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("database: %d elements as a %dx%d matrix\n", n, layout.Rows, layout.Cols)

	start := time.Now()
	query, err := pir.NewQuery(pk, layout, secretIndex)
	if err != nil {
		log.Fatal(err)
	}
	clientTime := time.Since(start)

	start = time.Now()
	answer, err := pir.Process(pk, table, query)
	if err != nil {
		log.Fatal(err)
	}
	serverTime := time.Since(start)

	got, err := pir.Extract(sk, layout, query, answer, secretIndex)
	if err != nil {
		log.Fatal(err)
	}
	if got != table.Value(secretIndex) {
		log.Fatalf("retrieved %d, database holds %d", got, table.Value(secretIndex))
	}
	fmt.Printf("privately retrieved element %d = %d ✓\n", secretIndex, got)
	fmt.Printf("client query build: %v   server fold: %v\n",
		clientTime.Round(time.Millisecond), serverTime.Round(time.Millisecond))

	up := query.UplinkBytes(pk)
	down := answer.DownlinkBytes(pk)
	linear := int64(n) * int64(pk.CiphertextSize())
	fmt.Printf("\nbandwidth: %d bytes up + %d down = %d total\n", up, down, up+down)
	fmt.Printf("the linear selected-sum protocol would upload %d bytes (%.0fx more)\n",
		linear, float64(linear)/float64(up+down))
	fmt.Println("\ntrade-off: PIR reveals one whole matrix row's worth of capacity to the")
	fmt.Println("client rather than only an aggregate — sublinear communication is not free.")
}
