// Wireless / decelerated medium: the paper's worst-case communication
// setting ("a decelerated communications medium to account for worst-case
// communication delays such as might be provided in a wireless multihop
// setting") and the preprocessing optimization that makes a weak device
// viable ("useful for mobile devices, e.g. PDAs, that have limited
// computing power but reasonable amounts of storage").
//
// The example runs the same query over three links — cluster switch,
// 56 Kbps dial-up, 1 Mbps multihop wireless — with and without the §3.3
// preprocessing, and prints where the bottleneck sits in each case: the
// paper's central experimental question.
//
// Run it:
//
//	go run ./examples/wireless
package main

import (
	"crypto/rand"
	"fmt"
	"log"
	"time"

	"privstats/internal/database"
	"privstats/internal/netsim"
	"privstats/internal/paillier"
	"privstats/internal/selectedsum"
)

func main() {
	const n = 5_000
	table, err := database.Generate(n, database.DistUniform, 1)
	if err != nil {
		log.Fatal(err)
	}
	sel, err := database.GenerateSelection(n, n/2, database.PatternRandom, 2)
	if err != nil {
		log.Fatal(err)
	}
	key, err := paillier.KeyGen(rand.Reader, 512)
	if err != nil {
		log.Fatal(err)
	}
	sk := paillier.SchemeKey{SK: key}

	links := []netsim.Link{netsim.ShortDistance, netsim.LongDistance, netsim.Wireless}

	fmt.Printf("query: private sum of %d of %d rows, 512-bit keys\n\n", sel.Count(), n)
	for _, link := range links {
		// Without preprocessing.
		plain, err := selectedsum.Run(sk, table, sel, selectedsum.Options{Link: link})
		if err != nil {
			log.Fatal(err)
		}

		// With preprocessing: the device encrypted its stock of 0s and 1s
		// overnight; online it only streams stored ciphertexts.
		// The PDA owns the key, so its overnight fill uses the CRT path.
		store := paillier.NewBitStoreOwner(key)
		preStart := time.Now()
		if err := store.FillParallel(n-sel.Count(), sel.Count(), 4); err != nil {
			log.Fatal(err)
		}
		preprocess := time.Since(preStart)
		pre, err := selectedsum.Run(sk, table, sel, selectedsum.Options{
			Link: link,
			Pool: paillier.SchemeBitStore{Store: store},
		})
		if err != nil {
			log.Fatal(err)
		}
		if pre.Sum.Cmp(plain.Sum) != 0 {
			log.Fatal("optimized run disagrees with plain run")
		}

		fmt.Printf("%s\n", link.Name)
		fmt.Printf("  plain:        total %8v  (encrypt %v, comm %v)  bottleneck: %s\n",
			plain.Timings.Total.Round(time.Millisecond),
			plain.Timings.ClientEncrypt.Round(time.Millisecond),
			plain.Timings.Communication.Round(time.Millisecond),
			bottleneck(plain))
		fmt.Printf("  preprocessed: total %8v  (offline %v)             bottleneck: %s\n\n",
			pre.Timings.Total.Round(time.Millisecond),
			preprocess.Round(time.Millisecond),
			bottleneck(pre))
	}
	fmt.Println("The paper's finding: computation dominates everywhere until encryption")
	fmt.Println("is preprocessed; only then does a slow medium become the bottleneck.")
}

func bottleneck(r *selectedsum.Result) string {
	t := r.Timings
	max, name := t.ClientEncrypt, "client encryption"
	if t.ServerCompute > max {
		max, name = t.ServerCompute, "server computation"
	}
	if t.Communication > max {
		max, name = t.Communication, "communication"
	}
	if t.ClientDecrypt > max {
		name = "client decryption"
	}
	return name
}
