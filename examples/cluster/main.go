// Sharded cluster deployment: the paper's "multiple distributed databases"
// extension run as a live system. A 12,000-row logical table is split over
// three shard backends (the middle one replicated), an untrusted aggregator
// fans the client's encrypted index vector out to them, and the client gets
// back one rerandomized ciphertext — it cannot tell one server from three,
// and the aggregator never sees anything but ciphertexts under the
// client's key.
//
// The demo then kills a replicated shard's primary and repeats the query:
// the aggregator's client runtime fails over to the replica mid-protocol
// and the answer is still exact.
//
// Everything runs over real loopback TCP through the production runtimes
// (admission control on the servers, retry/failover in the fan-out).
//
// Run it:
//
//	go run ./examples/cluster
package main

import (
	"context"
	"crypto/rand"
	"fmt"
	"log"
	"net"
	"time"

	"privstats/internal/cluster"
	"privstats/internal/database"
	"privstats/internal/paillier"
	"privstats/internal/server"
)

func main() {
	const n = 12_000
	table, err := database.Generate(n, database.DistUniform, 2004)
	if err != nil {
		log.Fatal(err)
	}
	sel, err := database.GenerateSelection(n, n/3, database.PatternRandom, 830)
	if err != nil {
		log.Fatal(err)
	}
	oracle, err := table.SelectedSum(sel)
	if err != nil {
		log.Fatal(err)
	}

	quiet := func(string, ...any) {}
	serve := func(lo, hi int) (addr string, kill func()) {
		shard, err := table.Shard(lo, hi)
		if err != nil {
			log.Fatal(err)
		}
		srv, err := server.New(shard, server.Config{Logf: quiet})
		if err != nil {
			log.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		go srv.Serve(ln)
		kill = func() {
			// Abrupt operator loss: stop accepting and tear down in-flight
			// sessions without a drain window.
			expired, cancel := context.WithDeadline(context.Background(), time.Now())
			defer cancel()
			_ = srv.Shutdown(expired)
		}
		return ln.Addr().String(), kill
	}

	// Three shards; the middle one gets a replica for the failover act.
	shardA, _ := serve(0, 4000)
	primaryB, killB := serve(4000, 8000)
	replicaB, _ := serve(4000, 8000)
	shardC, _ := serve(8000, 12000)
	sm, err := cluster.NewShardMap([]cluster.Shard{
		{Lo: 0, Hi: 4000, Backends: []string{shardA}},
		{Lo: 4000, Hi: 8000, Backends: []string{primaryB, replicaB}},
		{Lo: 8000, Hi: 12000, Backends: []string{shardC}},
	})
	if err != nil {
		log.Fatal(err)
	}
	fanout := cluster.NewClient(cluster.ClientConfig{
		Retries:    3,
		Backoff:    20 * time.Millisecond,
		ProbeAfter: 250 * time.Millisecond,
	})
	agg, err := cluster.NewAggregator(sm, fanout)
	if err != nil {
		log.Fatal(err)
	}
	proxy, err := server.NewHandler(agg, server.Config{Logf: quiet})
	if err != nil {
		log.Fatal(err)
	}
	pln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go proxy.Serve(pln)
	fmt.Printf("cluster: %d rows over %d shards, aggregator on %s\n", sm.Rows(), sm.Len(), pln.Addr())

	sk, err := paillier.KeyGen(rand.Reader, 512)
	if err != nil {
		log.Fatal(err)
	}
	client := cluster.NewClient(cluster.ClientConfig{Retries: 2})

	query := func(label string) {
		start := time.Now()
		sum, err := client.Query(context.Background(), []string{pln.Addr().String()},
			paillier.SchemeKey{SK: sk}, sel, 200, nil)
		if err != nil {
			log.Fatalf("%s: %v", label, err)
		}
		status := "OK"
		if sum.Cmp(oracle) != 0 {
			status = fmt.Sprintf("WRONG (oracle %v)", oracle)
		}
		fmt.Printf("%-22s sum=%v  [%s]  in %v\n", label, sum, status, time.Since(start).Round(time.Millisecond))
		if sum.Cmp(oracle) != 0 {
			log.Fatal("cluster result disagrees with the cleartext oracle")
		}
	}

	query("all shards healthy:")

	// Kill shard B's primary. The next fan-out hits the dead address and
	// the aggregator's runtime replays the shard's slice to the replica.
	fmt.Printf("\nkilling shard B primary %s ...\n", primaryB)
	killB()
	query("primary down, failover:")

	cs := fanout.Metrics().Snapshot()
	fmt.Printf("\naggregator fan-out stats: %d queries, %d retries, %d failovers\n",
		cs.Queries, cs.Retries, cs.Failovers)
	for addr, b := range cs.Backends {
		fmt.Printf("  %-21s sessions=%d errors=%d\n", addr, b.Sessions, b.Errors)
	}
}
