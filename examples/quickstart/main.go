// Quickstart: the private selected-sum protocol end to end, in process.
//
// A server holds a table of numbers. A client wants the sum of the rows at
// indices it chooses — without the server learning which rows, and without
// the client learning anything else about the table.
//
// Run it:
//
//	go run ./examples/quickstart
package main

import (
	"crypto/rand"
	"fmt"
	"log"
	"time"

	"privstats/internal/database"
	"privstats/internal/netsim"
	"privstats/internal/paillier"
	"privstats/internal/selectedsum"
)

func main() {
	// --- Server side: a database of 10,000 32-bit values. ---
	table, err := database.Generate(10_000, database.DistUniform, 42)
	if err != nil {
		log.Fatal(err)
	}

	// --- Client side: a key pair and a secret selection of rows. ---
	start := time.Now()
	key, err := paillier.KeyGen(rand.Reader, 512) // the paper's key size
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("key generation: %v\n", time.Since(start).Round(time.Millisecond))

	sel, err := database.NewSelection(table.Len())
	if err != nil {
		log.Fatal(err)
	}
	for _, i := range []int{3, 1_000, 4_242, 9_999} {
		sel.Set(i)
	}

	// --- The protocol (paper Figure 1): client sends E(I_1)..E(I_n); the
	// server folds Π E(I_i)^{x_i} = E(Σ I_i·x_i); the client decrypts. ---
	res, err := selectedsum.Run(
		paillier.SchemeKey{SK: key},
		table, sel,
		selectedsum.Options{Link: netsim.ShortDistance},
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("private sum of %d selected rows: %v\n", sel.Count(), res.Sum)
	fmt.Printf("  client encryption: %v\n", res.Timings.ClientEncrypt.Round(time.Millisecond))
	fmt.Printf("  server compute:    %v\n", res.Timings.ServerCompute.Round(time.Millisecond))
	fmt.Printf("  communication:     %v (modelled, %d bytes up)\n",
		res.Timings.Communication.Round(time.Millisecond), res.BytesUp)
	fmt.Printf("  client decryption: %v\n", res.Timings.ClientDecrypt.Round(time.Microsecond))

	// Sanity: the cleartext oracle agrees.
	want, err := table.SelectedSum(sel)
	if err != nil {
		log.Fatal(err)
	}
	if res.Sum.Cmp(want) != 0 {
		log.Fatalf("protocol returned %v, cleartext oracle says %v", res.Sum, want)
	}
	fmt.Println("matches the cleartext oracle ✓")
}
