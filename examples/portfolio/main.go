// Portfolio exposure: selective private function evaluation with secret
// WEIGHTS rather than a 0/1 selection — the generalization the paper
// sketches ("integer weights in some larger range could be used to produce
// a weighted sum, which in turn could be used for a weighted average").
//
// A data vendor holds per-asset risk scores. A fund wants its portfolio's
// total risk exposure Σ w_i·r_i, where the weights w_i — its holdings — are
// the fund's most sensitive secret. The vendor sees only Paillier
// ciphertexts; the fund learns only the aggregate.
//
// The second act spreads the assets over three vendors (the paper: the
// protocol "can easily be extended to work for multiple distributed
// databases"): encrypted partial sums chain server-to-server, so the fund
// receives one ciphertext and no vendor learns another vendor's
// contribution.
//
// Run it:
//
//	go run ./examples/portfolio
package main

import (
	"crypto/rand"
	"fmt"
	"log"
	"math/big"
	mrand "math/rand"

	"privstats/internal/database"
	"privstats/internal/paillier"
	"privstats/internal/spfe"
)

func main() {
	const assets = 4_000
	rng := mrand.New(mrand.NewSource(11))

	// The vendor's risk scores (basis points).
	scores := make([]uint32, assets)
	for i := range scores {
		scores[i] = uint32(10 + rng.Intn(500))
	}
	vendor := database.New(scores)

	// The fund's secret holdings: a sparse weight vector (shares held).
	weights := make([]*big.Int, assets)
	held := 0
	for i := range weights {
		if rng.Intn(40) == 0 { // ~2.5% of assets held
			weights[i] = big.NewInt(int64(1 + rng.Intn(10_000)))
			held++
		} else {
			weights[i] = big.NewInt(0)
		}
	}
	w, err := spfe.NewWeights(weights)
	if err != nil {
		log.Fatal(err)
	}

	key, err := paillier.KeyGen(rand.Reader, 512)
	if err != nil {
		log.Fatal(err)
	}
	sk := paillier.SchemeKey{SK: key}

	// Act 1: one vendor, private weighted exposure.
	exposure, err := spfe.WeightedSum(sk, vendor.Column(), w, 500)
	if err != nil {
		log.Fatal(err)
	}
	avg, err := spfe.WeightedAverage(sk, vendor.Column(), w, 500)
	if err != nil {
		log.Fatal(err)
	}
	avgF, _ := avg.Float64()
	fmt.Printf("assets: %d, privately held positions: %d\n", assets, held)
	fmt.Printf("total risk exposure Σ w·r: %v\n", exposure)
	fmt.Printf("holdings-weighted mean risk: %.2f bp\n", avgF)

	// Oracle check (possible only because this example owns both sides).
	want := new(big.Int)
	for i, wi := range weights {
		want.Add(want, new(big.Int).Mul(wi, big.NewInt(int64(scores[i]))))
	}
	if exposure.Cmp(want) != 0 {
		log.Fatalf("exposure %v != oracle %v", exposure, want)
	}
	fmt.Println("oracle check ✓")

	// Act 2: the same assets split across three vendors; a plain 0/1 cohort
	// (the fund's watchlist) summed across all of them with chained
	// encrypted partials.
	t1, err := vendor.Shard(0, assets/3)
	if err != nil {
		log.Fatal(err)
	}
	t2, err := vendor.Shard(assets/3, 2*assets/3)
	if err != nil {
		log.Fatal(err)
	}
	t3, err := vendor.Shard(2*assets/3, assets)
	if err != nil {
		log.Fatal(err)
	}
	watchlist, err := database.GenerateSelection(assets, 300, database.PatternRandom, 17)
	if err != nil {
		log.Fatal(err)
	}
	res, err := spfe.MultiDatabaseSum(sk, []*database.Table{t1, t2, t3}, watchlist, 500)
	if err != nil {
		log.Fatal(err)
	}
	wantWL, err := vendor.SelectedSum(watchlist)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwatchlist risk across %d vendors (%v rows each): %v\n",
		len(res.PerServerRows), res.PerServerRows, res.Sum)
	fmt.Printf("uplink %d bytes, inter-vendor chain %d bytes\n", res.BytesUp, res.ChainBytes)
	if res.Sum.Cmp(wantWL) != 0 {
		log.Fatalf("multi-vendor sum %v != oracle %v", res.Sum, wantWL)
	}
	fmt.Println("oracle check ✓")
}
