// Medical survey: privacy-preserving statistics over a patient registry —
// the data-mining scenario the paper's introduction motivates ("the growing
// concern about the privacy of individuals when their data is stored,
// aggregated, and mined").
//
// A hospital holds blood-pressure readings for 20,000 patients. A research
// client knows (from a public registry schema) which row ranges correspond
// to its cohort of interest and wants that cohort's mean and variance:
//
//   - the hospital must not learn which cohort the researcher studies;
//   - the researcher must learn nothing about patients outside the
//     aggregate it is entitled to.
//
// The stats.Analyst computes Σx and Σx² in one protocol round by folding a
// single encrypted index vector against the value and square columns.
//
// Run it:
//
//	go run ./examples/medicalsurvey
package main

import (
	"crypto/rand"
	"fmt"
	"log"
	mrand "math/rand"
	"time"

	"privstats/internal/database"
	"privstats/internal/netsim"
	"privstats/internal/paillier"
	"privstats/internal/stats"
)

func main() {
	// The hospital's registry: systolic blood pressure (mmHg), one row per
	// patient. Synthetic, ~N(125, 18), deterministic.
	const patients = 20_000
	rng := mrand.New(mrand.NewSource(7))
	readings := make([]uint32, patients)
	for i := range readings {
		v := 125 + 18*rng.NormFloat64()
		if v < 70 {
			v = 70
		}
		if v > 220 {
			v = 220
		}
		readings[i] = uint32(v)
	}
	registry := database.New(readings)

	// The researcher's cohort: rows 5,000-7,499 (say, patients enrolled in
	// a particular study window). The hospital never sees these indices.
	cohort, err := database.NewSelection(patients)
	if err != nil {
		log.Fatal(err)
	}
	for i := 5_000; i < 7_500; i++ {
		cohort.Set(i)
	}

	key, err := paillier.KeyGen(rand.Reader, 512)
	if err != nil {
		log.Fatal(err)
	}
	analyst, err := stats.NewAnalyst(paillier.SchemeKey{SK: key}, stats.Config{
		Link:      netsim.ShortDistance,
		ChunkSize: 500, // stream the cohort vector in batches (paper §3.2)
	})
	if err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	m, cost, err := analyst.MomentsQuery(registry, cohort)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	mean, _ := m.Mean.Float64()
	variance, _ := m.Variance.Float64()
	fmt.Printf("cohort size:        %d patients\n", m.Count)
	fmt.Printf("mean systolic BP:   %.2f mmHg\n", mean)
	fmt.Printf("variance:           %.2f (stddev %.2f)\n", variance, m.StdDev())
	fmt.Printf("protocol wall time: %v\n", elapsed.Round(time.Millisecond))
	fmt.Printf("modelled online:    %v, %d bytes up / %d down\n",
		cost.Online.Round(time.Millisecond), cost.BytesUp, cost.BytesDown)

	// Verify against the cleartext oracle (only possible here because this
	// example owns both sides).
	var sum, sumSq float64
	for i := 5_000; i < 7_500; i++ {
		v := float64(readings[i])
		sum += v
		sumSq += v * v
	}
	n := 2_500.0
	oracleMean := sum / n
	oracleVar := sumSq/n - oracleMean*oracleMean
	fmt.Printf("oracle check:       mean %.2f, variance %.2f ✓\n", oracleMean, oracleVar)

	// Second query: a private GROUP BY over the hospital's public age
	// bands. The band per row is public schema; which patients are in the
	// researcher's cohort stays encrypted. One uplink returns per-band
	// sums and counts, i.e. per-band mean blood pressure of the cohort.
	bands := []string{"<40", "40-64", "65+"}
	labels := make([]int, patients)
	for i := range labels {
		labels[i] = i % len(bands) // synthetic band assignment
	}
	grouped, _, err := analyst.GroupByQuery(registry, cohort, labels, len(bands))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ncohort mean BP by public age band (one protocol round):")
	for b, name := range bands {
		mean := grouped.Mean(b)
		if mean == nil {
			fmt.Printf("  %-6s no cohort members\n", name)
			continue
		}
		mf, _ := mean.Float64()
		fmt.Printf("  %-6s n=%-5v mean %.2f mmHg\n", name, grouped.Counts[b], mf)
	}
}
