// Multi-client cooperation (paper §3.5): three weak clients split the work
// of one big private-sum query, and the server's randomized blinding keeps
// the partial sums — which would individually violate database privacy —
// hidden until they are combined.
//
// Each client holds one third of the index vector and its own key pair.
// The server blinds client i's partial sum with R_i, where Σ R_i ≡ 0
// (mod B). A ring pass adds the blinded values; only the total, in which
// the blindings cancel, is ever visible.
//
// Run it:
//
//	go run ./examples/multiclient
package main

import (
	"crypto/rand"
	"fmt"
	"log"
	"time"

	"privstats/internal/database"
	"privstats/internal/homomorphic"
	"privstats/internal/netsim"
	"privstats/internal/paillier"
	"privstats/internal/selectedsum"
)

func main() {
	const n = 9_000
	table, err := database.Generate(n, database.DistUniform, 2004)
	if err != nil {
		log.Fatal(err)
	}
	sel, err := database.GenerateSelection(n, n/2, database.PatternRandom, 830)
	if err != nil {
		log.Fatal(err)
	}

	newKey := func() (homomorphic.PrivateKey, error) {
		sk, err := paillier.KeyGen(rand.Reader, 512)
		if err != nil {
			return nil, err
		}
		return paillier.SchemeKey{SK: sk}, nil
	}

	// Single-client reference run.
	singleKey, err := newKey()
	if err != nil {
		log.Fatal(err)
	}
	single, err := selectedsum.Run(singleKey, table, sel, selectedsum.Options{Link: netsim.ShortDistance})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("single client:   sum=%v online=%v\n",
		single.Sum, single.Timings.Total.Round(time.Millisecond))

	// Three cooperating clients.
	multi, err := selectedsum.RunMulti(newKey, table, sel, selectedsum.MultiOptions{
		Link:    netsim.ShortDistance,
		Clients: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("three clients:   sum=%v online=%v (phase1 %v + combining %v)\n",
		multi.Sum, multi.Total.Round(time.Millisecond),
		multi.Phase1.Round(time.Millisecond), multi.Phase2.Round(time.Microsecond))
	for i, t := range multi.PerClient {
		fmt.Printf("  client %d shard: encrypt %v, decrypt %v\n",
			i+1, t.ClientEncrypt.Round(time.Millisecond), t.ClientDecrypt.Round(time.Microsecond))
	}

	if multi.Sum.Cmp(single.Sum) != 0 {
		log.Fatalf("multi-client sum %v != single-client sum %v", multi.Sum, single.Sum)
	}
	speedup := float64(single.Timings.Total) / float64(multi.Total)
	fmt.Printf("speedup:         %.2fx (paper §3.5 reports ≈2.99x for k=3)\n", speedup)
}
